"""Unit tests for the set-associative cache model."""

import pytest

from repro.uarch.cache.cache import Cache, MainMemory
from repro.uarch.params import CacheParams


def make_cache(size=1024, assoc=2, line=64, hit=2, next_level=None):
    return Cache(CacheParams(size_bytes=size, assoc=assoc,
                             line_bytes=line, hit_latency=hit),
                 next_level=next_level)


def test_first_access_misses_then_hits():
    cache = make_cache()
    assert cache.access(0x100) == 2  # miss; no next level to charge
    assert cache.stats.misses == 1
    assert cache.access(0x100) == 2
    assert cache.stats.hits == 1


def test_line_granularity():
    cache = make_cache(line=64)
    cache.access(0x100)
    assert cache.access(0x13F) == 2  # same 64-byte line
    assert cache.stats.hits == 1
    cache.access(0x140)  # next line: miss
    assert cache.stats.misses == 2


def test_miss_charges_next_level():
    memory = MainMemory(latency=100)
    cache = make_cache(hit=2, next_level=memory)
    assert cache.access(0x100) == 102
    assert cache.access(0x100) == 2


def test_lru_replacement():
    # 2-way cache with few sets: fill a set, touch the first way, then
    # force an eviction — the untouched way must go.
    cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
    sets = 2
    line = 64
    a, b, c = 0, sets * line, 2 * sets * line  # all map to set 0
    cache.access(a)
    cache.access(b)
    cache.access(a)       # a becomes MRU
    cache.access(c)       # evicts b
    cache.access(a)
    assert cache.stats.hits == 2  # a twice
    cache.access(b)       # must miss again
    assert cache.stats.misses == 4


def test_writeback_counted_for_dirty_victims():
    cache = make_cache(size=256, assoc=2, line=64)
    sets = 2
    line = 64
    a, b, c = 0, sets * line, 2 * sets * line
    cache.access(a, is_write=True)   # dirty
    cache.access(b)
    cache.access(c)                  # evicts dirty a
    assert cache.stats.writebacks == 1
    cache.access(2 * sets * line + sets * line)  # evicts clean b... (d)
    assert cache.stats.writebacks == 1


def test_write_hit_marks_dirty():
    cache = make_cache(size=256, assoc=2, line=64)
    sets, line = 2, 64
    a, b, c = 0, sets * line, 2 * sets * line
    cache.access(a)                  # clean fill
    cache.access(a, is_write=True)   # dirty via write hit
    cache.access(b)
    cache.access(c)                  # evicts a -> writeback
    assert cache.stats.writebacks == 1


def test_contains_has_no_side_effects():
    cache = make_cache()
    assert not cache.contains(0x100)
    cache.access(0x100)
    assert cache.contains(0x100)
    assert cache.stats.accesses == 1


def test_invalidate_all():
    cache = make_cache()
    cache.access(0x100)
    cache.invalidate_all()
    assert not cache.contains(0x100)


def test_miss_rate():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.stats.miss_rate == pytest.approx(1 / 3)


def test_non_power_of_two_line_rejected():
    with pytest.raises(ValueError):
        Cache(CacheParams(size_bytes=1024, assoc=2, line_bytes=48))


def test_main_memory_flat_latency():
    memory = MainMemory(latency=150)
    assert memory.access(0) == 150
    assert memory.access(1 << 40) == 150
    assert memory.stats.accesses == 2
