"""Unit tests for uops and value tags."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.uarch.pipeline.uop import (
    DISPATCHED,
    FETCHED,
    SQUASHED,
    Uop,
    ValueTag,
)


def alu_record(seq=0):
    return TraceRecord(seq, seq, OpClass.IALU, 1, (2,))


def test_uop_initial_state():
    uop = Uop(alu_record(), uid=7)
    assert uop.state == FETCHED
    assert uop.seq == 0
    assert uop.pending == 0
    assert uop.complete_cycle is None
    assert not uop.replica


def test_uop_repr_readable():
    text = repr(Uop(alu_record(3), uid=1))
    assert "seq=3" in text
    assert "IALU" in text


def test_tag_satisfy_wakes_ready_consumers():
    tag = ValueTag("t")
    consumer = Uop(alu_record(), uid=0)
    consumer.state = DISPATCHED
    consumer.pending = 1
    tag.consumers.append(consumer)
    woken = tag.satisfy(10)
    assert woken == [consumer]
    assert consumer.pending == 0
    assert consumer.operand_ready == 10


def test_tag_satisfy_skips_squashed():
    tag = ValueTag()
    consumer = Uop(alu_record(), uid=0)
    consumer.state = SQUASHED
    consumer.pending = 1
    tag.consumers.append(consumer)
    assert tag.satisfy(5) == []
    assert consumer.pending == 1


def test_tag_satisfy_partial_pending_not_woken():
    tag = ValueTag()
    consumer = Uop(alu_record(), uid=0)
    consumer.state = DISPATCHED
    consumer.pending = 2
    tag.consumers.append(consumer)
    assert tag.satisfy(5) == []
    assert consumer.pending == 1


def test_tag_double_satisfy_rejected():
    tag = ValueTag("x")
    tag.satisfy(1)
    with pytest.raises(ValueError, match="twice"):
        tag.satisfy(2)


def test_tag_keeps_max_operand_ready():
    tag = ValueTag()
    consumer = Uop(alu_record(), uid=0)
    consumer.state = DISPATCHED
    consumer.pending = 1
    consumer.operand_ready = 50
    tag.consumers.append(consumer)
    tag.satisfy(10)
    assert consumer.operand_ready == 50  # earlier value not regressed
