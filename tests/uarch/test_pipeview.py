"""Tests for the pipeline-timeline visualiser."""

from repro.isa import assemble, run_program
from repro.uarch.params import small_core_config
from repro.uarch.pipeline.pipeview import (
    PipeviewCollector,
    render_uop_timeline,
    trace_single_core,
)
from repro.workloads.generator import generate_trace


def run_collect(source):
    execution = run_program(assemble(source))
    return trace_single_core(execution.trace, small_core_config())


def test_collects_all_committed_uops():
    result, collector = run_collect("li r1, 1\nli r2, 2\nhalt")
    assert len(collector.uops) == 3
    assert [u.seq for u in collector.uops] == [0, 1, 2]


def test_render_contains_stage_markers():
    _, collector = run_collect("li r1, 1\naddi r1, r1, 1\nhalt")
    text = collector.render()
    for marker in "fdicr":
        assert marker in text
    assert "ialu" in text


def test_render_row_order_matches_retirement():
    _, collector = run_collect("li r1, 1\nli r2, 2\nli r3, 3\nhalt")
    lines = collector.render().splitlines()[1:]
    sequences = [int(line.split()[0]) for line in lines]
    assert sequences == sorted(sequences)


def test_serial_chain_issues_staggered():
    _, collector = run_collect(
        "li r1, 0\naddi r1, r1, 1\naddi r1, r1, 1\nhalt")
    chain = collector.uops[1:3]
    assert chain[1].issue_cycle > chain[0].issue_cycle


def test_render_empty_collector():
    collector = PipeviewCollector()
    assert "no uops" in collector.render()


def test_collection_cap():
    trace = generate_trace("gcc", 500)
    result, collector = trace_single_core(trace, small_core_config(),
                                          max_uops=50)
    assert result.instructions == 500
    assert len(collector.uops) == 50


def test_render_window_selection():
    trace = generate_trace("gcc", 200)
    _, collector = trace_single_core(trace, small_core_config())
    text = collector.render(first=10, count=5)
    lines = text.splitlines()[1:]
    assert len(lines) == 5
    assert lines[0].split()[0] == "10"


def test_timeline_width_bounded():
    trace = generate_trace("mcf", 300)
    _, collector = trace_single_core(trace, small_core_config())
    for line in collector.render(count=20, width=60).splitlines()[1:]:
        assert len(line.split("|", 1)[1]) <= 60
