"""Unit tests for the self-fetching front end."""

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.uarch.branch.btb import FrontEndPredictor
from repro.uarch.cache.hierarchy import CacheHierarchy
from repro.uarch.params import small_core_config
from repro.uarch.pipeline.core import CycleCore
from repro.uarch.pipeline.fetch import SelfFetchUnit


def make(trace, params=None, warm_icache=True):
    params = params or small_core_config()
    core = CycleCore(params, CacheHierarchy(params))
    predictor = FrontEndPredictor(params.branch)
    if warm_icache:
        # A cold L1I line costs a full memory round-trip; most tests
        # want to observe steady-state fetch behaviour instead.
        for record in trace:
            core.hierarchy.fetch(record.pc * 4)
    return core, SelfFetchUnit(core, trace, predictor,
                               line_bytes=params.l1i.line_bytes)


def alu_run(n, pc_start=0):
    return [TraceRecord(i, pc_start + i, OpClass.IALU, 1, ())
            for i in range(n)]


def drive(core, fetch, cycles):
    for cycle in range(cycles):
        core.phase_commit(cycle)
        core.phase_complete(cycle)
        core.phase_issue(cycle)
        core.phase_dispatch(cycle)
        fetch.phase_fetch(cycle)


def test_fetch_width_per_cycle():
    trace = alu_run(20)
    core, fetch = make(trace)
    for cycle in range(3):
        fetch.phase_fetch(cycle)
    assert 0 < fetch.fetched <= 2 * 3  # width 2 per cycle


def test_done_after_trace_exhausted():
    trace = alu_run(4)
    core, fetch = make(trace)
    drive(core, fetch, 30)
    assert fetch.done()


def test_mispredict_stalls_fetch_until_resolution():
    # One branch with a cold BTB mispredicts; fetch must pause.
    trace = [
        TraceRecord(0, 0, OpClass.BRANCH, None, (1, 2), taken=True,
                    target=64),
    ] + [TraceRecord(i, 64 + i, OpClass.IALU, 1, ())
         for i in range(1, 12)]
    core, fetch = make(trace)
    drive(core, fetch, 60)
    assert fetch.mispredict_stalls > 0
    assert fetch.done()


def test_correct_taken_branch_ends_fetch_group():
    # Predictable taken branch (trained BTB) still terminates the group.
    params = small_core_config()
    trace = [
        TraceRecord(0, 0, OpClass.BRANCH, None, (1, 2), taken=True,
                    target=100),
        TraceRecord(1, 100, OpClass.IALU, 1, ()),
        TraceRecord(2, 101, OpClass.IALU, 1, ()),
    ]
    core, fetch = make(trace, params)
    # Pre-train the predictor so the branch predicts correctly.
    fetch.predictor.update(trace[0])
    fetch.predictor.update(trace[0])
    drive(core, fetch, 40)
    branch_uop_cycle = None
    assert fetch.done()
    assert fetch.mispredict_stalls == 0


def test_icache_miss_stalls_fetch():
    trace = alu_run(4)
    core, fetch = make(trace, warm_icache=False)
    fetch.phase_fetch(0)
    # Cold L1I: the line is being fetched, nothing delivered at cycle 0.
    assert fetch.fetched == 0


def test_reset_to_rewinds():
    trace = alu_run(10)
    core, fetch = make(trace)
    drive(core, fetch, 20)
    assert fetch.done()
    fetch.reset_to(5)
    assert not fetch.done()
