"""Unit tests for the stride prefetcher."""

import pytest

from repro.uarch.cache.hierarchy import CacheHierarchy
from repro.uarch.cache.prefetch import StridePrefetcher, attach_prefetcher
from repro.uarch.params import small_core_config
from repro.uarch.pipeline.machine import simulate_single_core
from repro.workloads.generator import generate_trace


def make_hierarchy():
    return CacheHierarchy(small_core_config())


def test_needs_three_accesses_to_arm():
    hierarchy = make_hierarchy()
    prefetcher = StridePrefetcher(degree=1)
    assert prefetcher.observe(1, 0x1000, hierarchy) == 0   # first sight
    assert prefetcher.observe(1, 0x1040, hierarchy) == 0   # stride seen
    assert prefetcher.observe(1, 0x1080, hierarchy) == 0   # confidence 2?
    issued_total = 0
    for i in range(3, 8):
        issued_total += prefetcher.observe(1, 0x1000 + 0x40 * i,
                                           hierarchy)
    assert issued_total > 0


def test_armed_stream_prefetches_next_lines():
    hierarchy = make_hierarchy()
    prefetcher = StridePrefetcher(degree=2)
    for i in range(6):
        prefetcher.observe(7, 0x2000 + 64 * i, hierarchy)
    # The lines ahead of the stream are now resident.
    assert hierarchy.l1d.contains(0x2000 + 64 * 6)
    assert hierarchy.l1d.contains(0x2000 + 64 * 7)


def test_random_pcs_never_arm():
    hierarchy = make_hierarchy()
    prefetcher = StridePrefetcher(degree=2)
    addresses = [0x1000, 0x9333, 0x2111, 0x7777, 0x100, 0x5050]
    for addr in addresses:
        prefetcher.observe(3, addr, hierarchy)
    assert prefetcher.prefetches == 0


def test_stride_change_resets_confidence():
    hierarchy = make_hierarchy()
    prefetcher = StridePrefetcher(degree=1)
    for i in range(5):
        prefetcher.observe(1, 0x1000 + 64 * i, hierarchy)
    before = prefetcher.prefetches
    prefetcher.observe(1, 0x9000, hierarchy)       # break the stream
    assert prefetcher.observe(1, 0x9100, hierarchy) == 0  # not re-armed


def test_table_capacity_bounded():
    hierarchy = make_hierarchy()
    prefetcher = StridePrefetcher(table_entries=8)
    for pc in range(50):
        prefetcher.observe(pc, 0x1000 * pc, hierarchy)
    assert prefetcher.stats()["tracked_pcs"] <= 8


def test_validation():
    with pytest.raises(ValueError):
        StridePrefetcher(table_entries=0)
    with pytest.raises(ValueError):
        StridePrefetcher(degree=0)


def test_attach_prefetcher_wraps_hierarchy():
    hierarchy = make_hierarchy()
    prefetcher = attach_prefetcher(hierarchy)
    for i in range(8):
        hierarchy.load(0x3000 + 64 * i, now=i)
    assert prefetcher.prefetches > 0
    assert hierarchy.prefetcher is prefetcher


def test_prefetching_speeds_up_streaming_workload():
    trace = generate_trace("lbm", 8000)
    base = small_core_config()
    plain = simulate_single_core(trace, base, warmup=2000)

    from repro.uarch.pipeline.machine import SingleCoreMachine
    machine = SingleCoreMachine(base)
    attach_prefetcher(machine.hierarchy)
    prefetched = machine.run(trace, workload="lbm", warmup=2000)
    assert prefetched.cycles < plain.cycles
