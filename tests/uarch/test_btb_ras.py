"""Unit tests for the BTB, RAS and the front-end predictor wrapper."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.uarch.branch.btb import (
    BranchTargetBuffer,
    FrontEndPredictor,
    ReturnAddressStack,
)
from repro.uarch.params import BranchPredictorParams


def branch(seq, pc, taken, target=None):
    return TraceRecord(seq, pc, OpClass.BRANCH, None, (1, 2),
                       taken=taken, target=target if taken else None)


def call(seq, pc, target):
    return TraceRecord(seq, pc, OpClass.JUMP, 31, (), taken=True,
                       target=target)


def ret(seq, pc, target):
    return TraceRecord(seq, pc, OpClass.JUMP, None, (31,), taken=True,
                       target=target)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(10) is None
        btb.install(10, 42)
        assert btb.lookup(10) == 42

    def test_aliasing_tag_check(self):
        btb = BranchTargetBuffer(64)
        btb.install(10, 42)
        assert btb.lookup(10 + 64) is None  # same index, different tag

    def test_replacement(self):
        btb = BranchTargetBuffer(64)
        btb.install(10, 42)
        btb.install(10 + 64, 99)
        assert btb.lookup(10) is None
        assert btb.lookup(10 + 64) == 99

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100)


class TestRas:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # evicts 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(4)
        assert len(ras) == 0
        ras.push(5)
        assert len(ras) == 1

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestFrontEndPredictor:
    def make(self):
        return FrontEndPredictor(BranchPredictorParams(
            kind="bimodal", table_entries=256, btb_entries=64,
            ras_entries=4))

    def test_taken_branch_needs_btb(self):
        frontend = self.make()
        record = branch(0, 10, True, target=50)
        # Counters start weakly-taken, but the BTB is cold: first
        # prediction of a taken branch misses on the target.
        assert frontend.predict(record) is False
        frontend.update(record)
        assert frontend.predict(record) is True

    def test_not_taken_branch_needs_training(self):
        frontend = self.make()
        record = branch(0, 10, False)
        frontend.predict(record)
        for _ in range(3):
            frontend.update(record)
        assert frontend.predict(record) is True

    def test_call_return_pair_uses_ras(self):
        frontend = self.make()
        # call at pc 5 -> fn at 100; return to 6.
        assert frontend.predict(call(0, 5, 100)) is True
        record = ret(1, 110, 6)
        assert frontend.predict(record) is True

    def test_return_to_wrong_address_detected(self):
        frontend = self.make()
        frontend.predict(call(0, 5, 100))
        record = ret(1, 110, 999)  # longjmp-style
        assert frontend.predict(record) is False

    def test_direct_jump_always_correct(self):
        frontend = self.make()
        record = TraceRecord(0, 7, OpClass.JUMP, None, (), taken=True,
                             target=3)
        assert frontend.predict(record) is True

    def test_misprediction_rate_counter(self):
        frontend = self.make()
        record = branch(0, 10, True, target=50)
        frontend.predict(record)   # wrong (BTB cold)
        frontend.update(record)
        frontend.predict(record)   # right
        assert frontend.lookups == 2
        assert frontend.mispredictions == 1
        assert frontend.misprediction_rate == pytest.approx(0.5)

    def test_non_control_never_counted(self):
        frontend = self.make()
        assert frontend.misprediction_rate == 0.0
