"""Unit tests for machine configurations."""

import pytest

from repro.isa.opcodes import OpClass
from repro.uarch.params import (
    DEFAULT_LATENCIES,
    FU_POOL_OF_CLASS,
    BranchPredictorParams,
    CacheParams,
    CoreParams,
    core_config,
    medium_core_config,
    small_core_config,
)


def test_reference_configs_shape():
    small = small_core_config()
    medium = medium_core_config()
    assert small.fetch_width == 2 and medium.fetch_width == 4
    assert small.rob_entries < medium.rob_entries
    assert small.l2.size_bytes < medium.l2.size_bytes
    assert small.name == "small" and medium.name == "medium"


def test_core_config_lookup():
    assert core_config("small").fetch_width == 2
    assert core_config("medium").fetch_width == 4
    with pytest.raises(KeyError, match="unknown config"):
        core_config("huge")


def test_cache_params_num_sets():
    cache = CacheParams(size_bytes=32 * 1024, assoc=4, line_bytes=64)
    assert cache.num_sets == 128


def test_cache_params_invalid_geometry():
    cache = CacheParams(size_bytes=64, assoc=4, line_bytes=64)
    with pytest.raises(ValueError):
        cache.num_sets


def test_every_op_class_has_latency_and_pool():
    for op_class in OpClass:
        assert op_class in DEFAULT_LATENCIES
        assert op_class in FU_POOL_OF_CLASS


def test_with_replaces_fields():
    base = small_core_config()
    wider = base.with_(issue_width=6)
    assert wider.issue_width == 6
    assert wider.rob_entries == base.rob_entries
    assert base.issue_width == 2  # original untouched


def test_long_ops_slower_than_alu():
    latencies = DEFAULT_LATENCIES
    assert latencies[OpClass.IALU] < latencies[OpClass.IMUL]
    assert latencies[OpClass.IMUL] < latencies[OpClass.IDIV]
    assert latencies[OpClass.FADD] < latencies[OpClass.FDIV]


def test_default_core_params_reasonable():
    params = CoreParams()
    assert params.rob_entries >= params.iq_entries
    assert params.memory_latency > params.l2.hit_latency


def test_branch_predictor_params_defaults():
    params = BranchPredictorParams()
    assert params.kind in ("bimodal", "gshare", "tournament")
    assert params.table_entries > 0
