"""Tests for the perceptron branch predictor."""

import random

import pytest

from repro.uarch.branch.predictors import (
    GsharePredictor,
    PerceptronPredictor,
    make_direction_predictor,
)
from repro.uarch.params import BranchPredictorParams


def accuracy(predictor, outcomes, pc=33, measure_from=0.5):
    correct = 0
    measured = 0
    start = int(len(outcomes) * measure_from)
    for index, taken in enumerate(outcomes):
        if index >= start:
            measured += 1
            if predictor.predict(pc) == taken:
                correct += 1
        predictor.update(pc, taken)
    return correct / measured


def test_learns_biased_branch():
    predictor = PerceptronPredictor(64, 16)
    assert accuracy(predictor, [True] * 200) > 0.98


def test_learns_alternation():
    predictor = PerceptronPredictor(64, 16)
    outcomes = [bool(i % 2) for i in range(400)]
    assert accuracy(predictor, outcomes) > 0.95


def test_learns_long_period_pattern():
    """Period-12 loop: needs history longer than a short gshare's."""
    predictor = PerceptronPredictor(64, 24)
    outcomes = ([True] * 11 + [False]) * 40
    assert accuracy(predictor, outcomes) > 0.9


def test_random_branch_near_chance():
    predictor = PerceptronPredictor(64, 16)
    rng = random.Random(7)
    outcomes = [rng.random() < 0.5 for _ in range(600)]
    assert 0.3 < accuracy(predictor, outcomes) < 0.7


def test_weights_saturate():
    predictor = PerceptronPredictor(64, 8)
    for _ in range(2000):
        predictor.update(5, True)
    weights = predictor._weights[5 & predictor._mask]
    assert all(abs(weight) <= 127 for weight in weights)


def test_validation():
    with pytest.raises(ValueError):
        PerceptronPredictor(100, 8)
    with pytest.raises(ValueError):
        PerceptronPredictor(64, 0)


def test_factory_builds_perceptron():
    params = BranchPredictorParams(kind="perceptron",
                                   table_entries=4096, history_bits=16)
    assert isinstance(make_direction_predictor(params),
                      PerceptronPredictor)
