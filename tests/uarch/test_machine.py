"""Unit/behaviour tests for the single-core machine."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.uarch.params import medium_core_config, small_core_config
from repro.uarch.pipeline.machine import SingleCoreMachine, simulate_single_core
from repro.workloads.generator import generate_trace
from repro.workloads.kernels import run_kernel


def test_empty_trace():
    result = SingleCoreMachine(small_core_config()).run([])
    assert result.cycles == 0 and result.instructions == 0


def test_commits_everything():
    trace = generate_trace("gcc", 2000)
    result = simulate_single_core(trace, small_core_config(),
                                  workload="gcc")
    assert result.instructions == 2000
    assert result.cycles > 0
    assert result.machine == "single"
    assert result.workload == "gcc"


def test_ipc_bounded_by_width():
    trace = generate_trace("hmmer", 3000)
    small = simulate_single_core(trace, small_core_config())
    assert 0 < small.ipc <= small_core_config().commit_width


def test_medium_beats_small_on_ilp_rich_code():
    trace = generate_trace("hmmer", 6000)
    small = simulate_single_core(trace, small_core_config(), warmup=2000)
    medium = simulate_single_core(trace, medium_core_config(),
                                  warmup=2000)
    assert medium.cycles < small.cycles


def test_serial_chain_ipc_near_one():
    """A pure dependency chain of 1-cycle ops cannot exceed IPC 1."""
    trace = [TraceRecord(i, i % 50, OpClass.IALU, 1, (1,))
             for i in range(500)]
    result = simulate_single_core(trace, medium_core_config())
    assert result.ipc <= 1.05


def test_wide_independent_code_exceeds_ipc_one():
    trace = [TraceRecord(i, i % 50, OpClass.IALU, (i % 8) + 1, ())
             for i in range(800)]
    # Warm-up absorbs the cold I-cache fill.
    result = simulate_single_core(trace, medium_core_config(), warmup=200)
    assert result.ipc > 1.5


def test_memory_latency_hurts():
    """The same instruction stream with DRAM-missing loads runs slower."""
    hits = [TraceRecord(i, i % 20, OpClass.LOAD, (i % 8) + 1, (9,),
                        mem_addr=0x100, mem_size=8)
            for i in range(300)]
    misses = [TraceRecord(i, i % 20, OpClass.LOAD, (i % 8) + 1, (9,),
                          mem_addr=0x100000 + i * 4096, mem_size=8)
              for i in range(300)]
    fast = simulate_single_core(hits, small_core_config())
    slow = simulate_single_core(misses, small_core_config())
    assert slow.cycles > 2 * fast.cycles


def test_warmup_reduces_compulsory_misses():
    trace = generate_trace("gcc", 8000)
    cold = simulate_single_core(trace[:4000], small_core_config())
    warm = simulate_single_core(trace, small_core_config(), warmup=4000)
    assert warm.extra["caches"]["l1d"]["miss_rate"] <= \
        cold.extra["caches"]["l1d"]["miss_rate"] + 0.02


def test_warmup_validation():
    trace = generate_trace("gcc", 100)
    with pytest.raises(ValueError):
        simulate_single_core(trace, small_core_config(), warmup=100)
    with pytest.raises(ValueError):
        simulate_single_core(trace, small_core_config(), warmup=-1)


def test_result_extra_sections():
    trace = generate_trace("mcf", 1500)
    result = simulate_single_core(trace, small_core_config())
    assert result.extra["core"]["committed"] == 1500
    assert "misprediction_rate" in result.extra["branch"]
    assert "l1d" in result.extra["caches"]
    assert result.extra["fetch"]["fetched"] == 1500


def test_runs_real_kernel_trace():
    execution = run_kernel("vector_sum", n=200)
    result = simulate_single_core(execution.trace, small_core_config())
    assert result.instructions == len(execution.trace)


def test_max_cycles_guard():
    trace = generate_trace("gcc", 500)
    machine = SingleCoreMachine(small_core_config(), max_cycles=3)
    with pytest.raises(RuntimeError, match="exceeded"):
        machine.run(trace)


def test_deterministic():
    trace = generate_trace("sjeng", 2000)
    a = simulate_single_core(trace, small_core_config())
    b = simulate_single_core(trace, small_core_config())
    assert a.cycles == b.cycles
