"""Tests for the interval-analysis analytical model."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.uarch.interval import (
    IntervalEstimate,
    estimate_cycles,
    estimate_from_result,
)
from repro.uarch.params import medium_core_config, small_core_config
from repro.uarch.pipeline.machine import simulate_single_core
from repro.workloads.generator import generate_trace


def wide_trace(n=400):
    return [TraceRecord(i, i % 30, OpClass.IALU, (i % 8) + 1, ())
            for i in range(n)]


def serial_trace(n=400):
    return [TraceRecord(i, i % 30, OpClass.IALU, 1, (1,))
            for i in range(n)]


def test_empty_trace():
    estimate = estimate_cycles([], small_core_config(), 0.0, 0.0)
    assert estimate.cycles == 0.0


def test_wide_code_bounded_by_width():
    params = small_core_config()
    estimate = estimate_cycles(wide_trace(), params, 0.0, 0.0)
    assert estimate.ipc == pytest.approx(params.issue_width, rel=0.01)


def test_serial_code_bounded_by_chain():
    estimate = estimate_cycles(serial_trace(), medium_core_config(),
                               0.0, 0.0)
    assert estimate.ipc == pytest.approx(1.0, rel=0.05)


def test_branch_term_scales_with_mpki():
    trace = wide_trace()
    params = small_core_config()
    low = estimate_cycles(trace, params, branch_mpki=1.0,
                          l2_miss_per_kilo=0.0)
    high = estimate_cycles(trace, params, branch_mpki=10.0,
                           l2_miss_per_kilo=0.0)
    assert high.cycles > low.cycles
    assert high.components["branch"] == pytest.approx(
        10 * low.components["branch"])


def test_memory_term_scales_and_mlp_divides():
    trace = wide_trace()
    params = small_core_config()
    base = estimate_cycles(trace, params, 0.0, l2_miss_per_kilo=5.0,
                           memory_mlp=1.0)
    overlapped = estimate_cycles(trace, params, 0.0,
                                 l2_miss_per_kilo=5.0, memory_mlp=4.0)
    assert overlapped.components["memory"] == pytest.approx(
        base.components["memory"] / 4.0)


def test_mlp_validation():
    with pytest.raises(ValueError):
        estimate_cycles(wide_trace(), small_core_config(), 0.0, 0.0,
                        memory_mlp=0.0)


def test_prediction_tracks_simulation_ordering():
    """The analytical model must rank benchmarks like the simulator."""
    params = medium_core_config()
    predicted, measured = [], []
    for name in ("hmmer", "mcf", "sjeng"):
        trace = generate_trace(name, 8000)
        result = simulate_single_core(trace, params, warmup=2500)
        estimate = estimate_from_result(trace[2500:], params, result)
        predicted.append(estimate.ipc)
        measured.append(result.ipc)
    pred_order = sorted(range(3), key=lambda i: predicted[i])
    meas_order = sorted(range(3), key=lambda i: measured[i])
    assert pred_order == meas_order


def test_prediction_within_factor_of_simulation():
    """First-order model: agree within ~2.5x on a realistic workload."""
    params = medium_core_config()
    trace = generate_trace("gcc", 8000)
    result = simulate_single_core(trace, params, warmup=2500)
    estimate = estimate_from_result(trace[2500:], params, result)
    ratio = estimate.ipc / result.ipc
    assert 0.4 < ratio < 2.5
