"""Tests for JSON configuration (de)serialisation."""

import pytest

from repro.fgstp.params import FgStpParams
from repro.uarch.configio import (
    core_params_from_dict,
    core_params_to_dict,
    fgstp_params_from_dict,
    fgstp_params_to_dict,
    load_core_params,
    load_fgstp_params,
    save_core_params,
    save_fgstp_params,
)
from repro.uarch.params import medium_core_config, small_core_config


@pytest.mark.parametrize("factory", [small_core_config,
                                     medium_core_config])
def test_core_roundtrip_dict(factory):
    params = factory()
    assert core_params_from_dict(core_params_to_dict(params)) == params


def test_core_roundtrip_file(tmp_path):
    path = tmp_path / "core.json"
    params = medium_core_config()
    save_core_params(params, path)
    assert load_core_params(path) == params


def test_core_file_is_editable_json(tmp_path):
    import json
    path = tmp_path / "core.json"
    save_core_params(small_core_config(), path)
    data = json.loads(path.read_text())
    data["issue_width"] = 6
    path.write_text(json.dumps(data))
    assert load_core_params(path).issue_width == 6


def test_core_missing_field_raises(tmp_path):
    data = core_params_to_dict(small_core_config())
    del data["rob_entries"]
    with pytest.raises(KeyError):
        core_params_from_dict(data)


def test_core_bad_opclass_raises():
    data = core_params_to_dict(small_core_config())
    data["latencies"]["WARP"] = 1
    with pytest.raises(KeyError):
        core_params_from_dict(data)


def test_fgstp_roundtrip_dict():
    params = FgStpParams(queue_latency=7, speculation=False)
    assert fgstp_params_from_dict(fgstp_params_to_dict(params)) == params


def test_fgstp_roundtrip_file(tmp_path):
    path = tmp_path / "fgstp.json"
    params = FgStpParams(window_size=256, batch_size=32)
    save_fgstp_params(params, path)
    assert load_fgstp_params(path) == params


def test_fgstp_validation_still_applies(tmp_path):
    data = fgstp_params_to_dict(FgStpParams())
    data["queue_latency"] = 0
    with pytest.raises(ValueError):
        fgstp_params_from_dict(data)
