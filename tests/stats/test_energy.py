"""Unit tests for the activity-based energy model."""

import pytest

from repro.stats.energy import (
    DEFAULT_ENERGY_WEIGHTS,
    EnergyReport,
    active_cores,
    energy_of,
)
from repro.stats.result import SimResult
from repro.uarch.params import small_core_config
from repro.uarch.pipeline.machine import simulate_single_core
from repro.fgstp.orchestrator import simulate_fgstp
from repro.workloads.generator import generate_trace


def single_result(cycles=1000, instructions=800):
    return SimResult("single", "small", "w", cycles, instructions, extra={
        "core": {"dispatched": instructions, "issued": instructions,
                 "squashed_uops": 0},
        "branch": {"lookups": 100},
        "caches": {
            "l1d": {"accesses": 200},
            "l1i": {"accesses": 150},
            "l2": {"accesses": 40, "misses": 10},
        },
    })


def test_report_fields():
    report = energy_of(single_result())
    assert report.dynamic > 0
    assert report.static > 0
    assert report.total == report.dynamic + report.static
    assert report.energy_per_instruction == pytest.approx(
        report.total / 800)
    assert report.energy_delay_product == pytest.approx(
        report.total * 1000)


def test_breakdown_matches_weights():
    report = energy_of(single_result())
    assert report.breakdown["commit"] == pytest.approx(
        800 * DEFAULT_ENERGY_WEIGHTS["commit"])
    assert report.breakdown["memory_access"] == pytest.approx(
        10 * DEFAULT_ENERGY_WEIGHTS["memory_access"])


def test_static_scales_with_active_cores():
    single = single_result()
    report_one = energy_of(single)
    two_core = SimResult("fgstp", "small", "w", 1000, 800, extra={
        "cores": [{"dispatched": 400, "issued": 400},
                  {"dispatched": 400, "issued": 400}],
        "branch": {"lookups": 100},
        "queues": {}, "partition": {"assigned": 800},
        "squashed_uops": 0,
        "caches": {"core0": {}, "core1": {}},
    })
    report_two = energy_of(two_core)
    assert report_two.static == pytest.approx(2 * report_one.static)


def test_active_cores():
    assert active_cores(single_result()) == 1
    assert active_cores(SimResult("fgstp", "s", "w", 1, 1)) == 2
    assert active_cores(SimResult("corefusion", "s", "w", 1, 1)) == 2


def test_end_to_end_single_vs_fgstp():
    """Fg-STP must cost more total energy on the same work (two cores),
    while retiring the same instruction count."""
    trace = generate_trace("gcc", 4000)
    base = small_core_config()
    single = simulate_single_core(trace, base, warmup=1000)
    fgstp = simulate_fgstp(trace, base, warmup=1000)
    e_single = energy_of(single)
    e_fgstp = energy_of(fgstp)
    assert e_fgstp.total > e_single.total
    assert e_single.instructions == e_fgstp.instructions


def test_empty_result():
    report = energy_of(SimResult("single", "s", "w", 0, 0))
    assert report.energy_per_instruction == 0.0
    assert report.total == 0.0


def test_custom_weights():
    weights = dict(DEFAULT_ENERGY_WEIGHTS, commit=10.0)
    report = energy_of(single_result(), weights=weights)
    assert report.breakdown["commit"] == pytest.approx(8000.0)
