"""Unit tests for table rendering."""

import pytest

from repro.stats.tables import format_cell, render_table


def test_format_cell_types():
    assert format_cell(1.23456, precision=2) == "1.23"
    assert format_cell(7) == "7"
    assert format_cell("x") == "x"
    assert format_cell(True) == "yes"
    assert format_cell(False) == "no"


def test_render_alignment():
    text = render_table(["name", "value"],
                        [["a", 1.0], ["long-name", 22.5]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    # Columns align: "value" header column starts at the same offset in
    # every row.
    offset = lines[0].index("value")
    assert lines[2][offset - 1] == " "


def test_render_title():
    text = render_table(["a"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError, match="row 0"):
        render_table(["a", "b"], [[1]])


def test_precision_applied():
    text = render_table(["x"], [[1.23456]], precision=1)
    assert "1.2" in text and "1.23" not in text


def test_empty_rows_ok():
    text = render_table(["a", "b"], [])
    assert "a" in text
