"""Unit tests for the CPI-stack ledger (repro.stats.cpistack)."""

import pytest

from repro.stats.cpistack import (
    CAUSES,
    STALL_CAUSES,
    AttributionError,
    CPIStack,
    cpistack_of,
    debug_checks_enabled,
    maybe_validate,
    stack_rows,
)
from repro.stats.result import SimResult


def make_stack(machine="single", cycles=10, instructions=12, width=2,
               slots=None):
    if slots is None:
        slots = {"retire": 12, "exec": 5, "load_miss": 3}
    return CPIStack(machine=machine, cycles=cycles,
                    instructions=instructions, width=width, slots=slots)


# ---------------------------------------------------------------- validate

def test_validate_balanced_ledger():
    stack = make_stack()
    assert stack.validate() is stack


def test_validate_rejects_unbalanced_ledger():
    stack = make_stack(slots={"retire": 12, "exec": 5})  # 17 != 20
    with pytest.raises(AttributionError, match="delta -3"):
        stack.validate()


def test_validate_rejects_unknown_cause():
    stack = make_stack(slots={"retire": 12, "mystery": 8})
    with pytest.raises(AttributionError, match="mystery"):
        stack.validate()


def test_validate_rejects_negative_counts():
    stack = make_stack(slots={"retire": 25, "exec": -5})
    with pytest.raises(AttributionError, match="negative"):
        stack.validate()


def test_validate_rejects_bad_width():
    with pytest.raises(AttributionError, match="width"):
        make_stack(width=0, slots={}).validate()


def test_validate_single_pins_retire_to_instructions():
    stack = make_stack(machine="single", instructions=11,
                       slots={"retire": 12, "exec": 8})
    with pytest.raises(AttributionError, match="11 instructions"):
        stack.validate()


def test_taxonomy_is_retire_plus_stalls():
    assert "retire" in CAUSES
    assert set(STALL_CAUSES) == set(CAUSES) - {"retire"}


# ---------------------------------------------------------- derived views

def test_components_sum_exactly_to_cycles():
    stack = make_stack().validate()
    assert sum(stack.cycles_by_cause().values()) == stack.cycles


def test_cpi_by_cause_sums_to_cpi():
    stack = make_stack().validate()
    assert sum(stack.cpi_by_cause().values()) == pytest.approx(stack.cpi)


def test_stall_fraction():
    stack = make_stack()
    assert stack.stall_fraction == pytest.approx(1 - 12 / 20)
    empty = make_stack(cycles=0, instructions=0, slots={})
    assert empty.stall_fraction == 0.0
    assert empty.cpi == 0.0


def test_stack_rows_follow_display_order_and_skip_zeros():
    stack = make_stack(slots={"retire": 12, "load_miss": 3, "exec": 5,
                              "drain": 0})
    causes = [row[0] for row in stack_rows(stack)]
    assert causes == ["retire", "load_miss", "exec"]


# ----------------------------------------------------------- composition

def test_scaled_preserves_the_ledger():
    # Not "single": rescaling multiplies retire slots, so the strict
    # single-machine retire==instructions check only holds natively.
    stack = make_stack(machine="fgstp").validate()
    wide = stack.scaled(8).validate()
    assert wide.width == 8
    assert wide.cycles == stack.cycles
    assert wide.slots["retire"] == 4 * stack.slots["retire"]
    with pytest.raises(ValueError):
        stack.scaled(3)
    with pytest.raises(ValueError):
        stack.scaled(0)


def test_merge_cores_adds_widths_same_cycles():
    core0 = make_stack(machine="core0",
                       slots={"retire": 12, "exec": 8})
    core1 = make_stack(machine="core1", instructions=4,
                       slots={"retire": 4, "intercore_wait": 16})
    merged = CPIStack.merge_cores([core0, core1], machine="fgstp",
                                  instructions=16).validate()
    assert merged.width == 4
    assert merged.cycles == 10
    assert merged.slots == {"retire": 16, "exec": 8, "intercore_wait": 16}


def test_merge_cores_rejects_mismatched_runs():
    with pytest.raises(ValueError):
        CPIStack.merge_cores([make_stack(cycles=10), make_stack(cycles=11)],
                             machine="fgstp", instructions=0)
    with pytest.raises(ValueError):
        CPIStack.merge_cores([], machine="fgstp", instructions=0)


def test_concat_unifies_widths_at_lcm():
    narrow = make_stack(width=2, cycles=10,
                        slots={"retire": 12, "exec": 8}).validate()
    wide = make_stack(width=4, cycles=5, instructions=8,
                      slots={"retire": 8, "load_miss": 12}).validate()
    joined = CPIStack.concat([narrow, wide], machine="fgstp-adaptive")
    joined.validate()
    assert joined.width == 4
    assert joined.cycles == 15
    assert joined.instructions == 20
    assert joined.slots["retire"] == 2 * 12 + 8
    with pytest.raises(ValueError):
        CPIStack.concat([], machine="fgstp-adaptive")


def test_with_overhead_charges_whole_cycles():
    stack = make_stack().validate()
    padded = stack.with_overhead("reconfig", 3).validate()
    assert padded.cycles == 13
    assert padded.slots["reconfig"] == 3 * stack.width
    assert stack.with_overhead("reconfig", 0) is stack
    with pytest.raises(ValueError):
        stack.with_overhead("reconfig", -1)


# ------------------------------------------------------- (de)serialisation

def test_dict_roundtrip_drops_zero_counts():
    stack = make_stack(slots={"retire": 12, "exec": 8, "drain": 0})
    record = stack.as_dict()
    assert "drain" not in record["slots"]
    again = CPIStack.from_dict(record)
    assert again.validate().cycles == stack.cycles
    assert again.slots == {"retire": 12, "exec": 8}


def test_cpistack_of_extracts_and_tolerates_absence():
    stack = make_stack()
    result = SimResult(machine="single", config="small", workload="gcc",
                       cycles=10, instructions=12,
                       extra={"cpistack": stack.as_dict()})
    assert cpistack_of(result).slots == {"retire": 12, "exec": 5,
                                         "load_miss": 3}
    legacy = SimResult(machine="single", config="small", workload="gcc",
                       cycles=10, instructions=12)
    assert cpistack_of(legacy) is None


# -------------------------------------------------------------- debug flag

def test_debug_flag_parsing(monkeypatch):
    for value, expected in (("1", True), ("yes", True), ("", False),
                            ("0", False), ("false", False), ("no", False)):
        monkeypatch.setenv("REPRO_CPISTACK_CHECK", value)
        assert debug_checks_enabled() is expected
    monkeypatch.delenv("REPRO_CPISTACK_CHECK")
    assert debug_checks_enabled() is False


def test_maybe_validate_honours_flag(monkeypatch):
    broken = make_stack(slots={"retire": 1})
    monkeypatch.setenv("REPRO_CPISTACK_CHECK", "0")
    assert maybe_validate(broken) is broken  # no check, passthrough
    monkeypatch.setenv("REPRO_CPISTACK_CHECK", "1")
    with pytest.raises(AttributionError):
        maybe_validate(broken)
