"""Tests for the JSON-lines result store."""

import pytest

from repro.stats.result import SimResult
from repro.stats.store import ResultStore


def result(machine, workload, cycles, instructions=1000, config="small"):
    return SimResult(machine, config, workload, cycles, instructions)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "runs.jsonl")


def test_append_and_iterate(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("fgstp", "gcc", 800), tags={"rev": "abc"})
    records = list(store)
    assert len(records) == 2
    assert records[1]["tags"]["rev"] == "abc"
    assert records[0]["ipc"] == 1.0


def test_empty_store(store):
    assert list(store) == []
    assert store.latest("single", "gcc") is None


def test_query_filters(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("single", "mcf", 3000))
    store.append(result("fgstp", "gcc", 700), tags={"run": 1})
    assert len(store.query(machine="single")) == 2
    assert len(store.query(workload="gcc")) == 2
    assert len(store.query(machine="fgstp", run=1)) == 1
    assert store.query(machine="fgstp", run=2) == []


def test_latest_returns_newest(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("single", "gcc", 900))
    assert store.latest("single", "gcc")["cycles"] == 900


def test_compare(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("fgstp", "gcc", 800))
    store.append(result("single", "mcf", 4000))
    store.append(result("fgstp", "mcf", 4000))
    speedups = store.compare("fgstp", "single")
    assert speedups["gcc"] == pytest.approx(1.25)
    assert speedups["mcf"] == pytest.approx(1.0)


def test_compare_skips_mismatched_work(store):
    store.append(result("single", "gcc", 1000, instructions=500))
    store.append(result("fgstp", "gcc", 800, instructions=999))
    assert store.compare("fgstp", "single") == {}


def test_corrupt_line_raises(tmp_path):
    path = tmp_path / "runs.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match="corrupt"):
        list(ResultStore(path))


def test_roundtrip_with_real_simulation(store):
    from repro.uarch.params import small_core_config
    from repro.uarch.pipeline.machine import simulate_single_core
    from repro.workloads.generator import generate_trace
    trace = generate_trace("gcc", 800)
    store.append(simulate_single_core(trace, small_core_config(),
                                      workload="gcc"))
    record = store.latest("single", "gcc")
    assert record["instructions"] == 800
    assert "caches" in record["extra"]
