"""Tests for the JSON-lines result store."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.stats.result import SimResult
from repro.stats.store import ResultStore


def result(machine, workload, cycles, instructions=1000, config="small"):
    return SimResult(machine, config, workload, cycles, instructions)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "runs.jsonl")


def test_append_and_iterate(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("fgstp", "gcc", 800), tags={"rev": "abc"})
    records = list(store)
    assert len(records) == 2
    assert records[1]["tags"]["rev"] == "abc"
    assert records[0]["ipc"] == 1.0


def test_empty_store(store):
    assert list(store) == []
    assert store.latest("single", "gcc") is None


def test_query_filters(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("single", "mcf", 3000))
    store.append(result("fgstp", "gcc", 700), tags={"run": 1})
    assert len(store.query(machine="single")) == 2
    assert len(store.query(workload="gcc")) == 2
    assert len(store.query(machine="fgstp", run=1)) == 1
    assert store.query(machine="fgstp", run=2) == []


def test_latest_returns_newest(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("single", "gcc", 900))
    assert store.latest("single", "gcc")["cycles"] == 900


def test_compare(store):
    store.append(result("single", "gcc", 1000))
    store.append(result("fgstp", "gcc", 800))
    store.append(result("single", "mcf", 4000))
    store.append(result("fgstp", "mcf", 4000))
    speedups = store.compare("fgstp", "single")
    assert speedups["gcc"] == pytest.approx(1.25)
    assert speedups["mcf"] == pytest.approx(1.0)


def test_compare_skips_mismatched_work(store):
    store.append(result("single", "gcc", 1000, instructions=500))
    store.append(result("fgstp", "gcc", 800, instructions=999))
    assert store.compare("fgstp", "single") == {}


def test_corrupt_line_raises(tmp_path):
    path = tmp_path / "runs.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match="corrupt"):
        list(ResultStore(path))


def _append_batch(args):
    """Worker for the concurrency regression test (module level so it
    pickles into pool workers)."""
    path, worker_id, count, payload_size = args
    store = ResultStore(path)
    for i in range(count):
        store.append(
            SimResult("single", "small", f"w{worker_id}", 1000 + i, 1000,
                      extra={"blob": "x" * payload_size}),
            tags={"worker": worker_id, "i": i})
    return worker_id


def test_concurrent_appends_do_not_interleave(tmp_path):
    """Regression: ``append`` used to open/write with no locking, so
    concurrent workers could interleave partial JSON lines.  The
    payload is sized well past the stream buffer so an unlocked write
    would flush mid-record."""
    path = tmp_path / "runs.jsonl"
    workers, per_worker, payload = 4, 5, 200_000
    with ProcessPoolExecutor(max_workers=workers) as pool:
        done = list(pool.map(
            _append_batch,
            [(str(path), worker_id, per_worker, payload)
             for worker_id in range(workers)]))
    assert sorted(done) == list(range(workers))
    records = list(ResultStore(path))  # raises ValueError on a torn line
    assert len(records) == workers * per_worker
    for worker_id in range(workers):
        mine = [r for r in records if r["tags"]["worker"] == worker_id]
        assert sorted(r["tags"]["i"] for r in mine) \
            == list(range(per_worker))
        assert all(len(r["extra"]["blob"]) == payload for r in mine)


def test_append_many_single_lock(store):
    count = store.append_many(
        [result("single", "gcc", 1000), result("fgstp", "gcc", 800)],
        tags={"batch": 1})
    assert count == 2
    records = list(store)
    assert len(records) == 2
    assert all(r["tags"]["batch"] == 1 for r in records)
    assert store.append_many([]) == 0


def test_roundtrip_with_real_simulation(store):
    from repro.uarch.params import small_core_config
    from repro.uarch.pipeline.machine import simulate_single_core
    from repro.workloads.generator import generate_trace
    trace = generate_trace("gcc", 800)
    store.append(simulate_single_core(trace, small_core_config(),
                                      workload="gcc"))
    record = store.latest("single", "gcc")
    assert record["instructions"] == 800
    assert "caches" in record["extra"]
