"""Property-based checks of the statistics the headline numbers rest on.

The geomean / mean / confidence-interval math in
:mod:`repro.stats.aggregate` and :mod:`repro.harness.multiseed` is
hand-rolled (no NumPy on the hot path); these tests pin it against
independent NumPy-free references — the stdlib :mod:`statistics` module
and exact :class:`fractions.Fraction` arithmetic — on random inputs.
"""

import math
import statistics
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.multiseed import SeedStudy
from repro.stats.aggregate import arith_mean, geomean, relative_improvement

#: Speedup-like values: positive, far from under/overflow.
positive = st.floats(min_value=1e-3, max_value=1e3,
                     allow_nan=False, allow_infinity=False)
positive_lists = st.lists(positive, min_size=1, max_size=30)


@settings(max_examples=200, deadline=None)
@given(positive_lists)
def test_geomean_matches_reference(values):
    reference = statistics.geometric_mean(values)
    assert math.isclose(geomean(values), reference, rel_tol=1e-9)


@settings(max_examples=200, deadline=None)
@given(positive_lists)
def test_arith_mean_matches_exact_fraction_mean(values):
    exact = sum(Fraction(value) for value in values) / len(values)
    assert math.isclose(arith_mean(values), float(exact), rel_tol=1e-9)


@settings(max_examples=200, deadline=None)
@given(positive_lists)
def test_geomean_bounded_by_extremes_and_below_arith_mean(values):
    gm = geomean(values)
    assert min(values) <= gm * (1 + 1e-9)
    assert gm <= max(values) * (1 + 1e-9)
    # AM-GM inequality.
    assert gm <= arith_mean(values) * (1 + 1e-9)


@settings(max_examples=200, deadline=None)
@given(st.lists(positive, min_size=2, max_size=30))
def test_seed_study_mean_and_stddev_match_statistics_module(speedups):
    study = SeedStudy(benchmark="gcc", machine="fgstp",
                      baseline="single", speedups=speedups)
    assert math.isclose(study.mean, statistics.fmean(speedups),
                        rel_tol=1e-9)
    reference_sd = statistics.stdev(speedups)
    assert math.isclose(study.stddev, reference_sd,
                        rel_tol=1e-6, abs_tol=1e-12)
    expected_ci = 1.96 * reference_sd / math.sqrt(len(speedups))
    assert math.isclose(study.ci95, expected_ci,
                        rel_tol=1e-6, abs_tol=1e-12)


@settings(max_examples=100, deadline=None)
@given(st.lists(positive, min_size=2, max_size=30),
       st.floats(min_value=0.0, max_value=2.0,
                 allow_nan=False, allow_infinity=False))
def test_significantly_above_is_consistent_with_interval(speedups,
                                                         threshold):
    study = SeedStudy(benchmark="gcc", machine="fgstp",
                      baseline="single", speedups=speedups)
    assert study.significantly_above(threshold) \
        == (study.mean - study.ci95 > threshold)


@settings(max_examples=100, deadline=None)
@given(positive)
def test_single_seed_study_has_zero_interval(speedup):
    study = SeedStudy(benchmark="gcc", machine="fgstp",
                      baseline="single", speedups=[speedup])
    assert study.stddev == 0.0
    assert study.ci95 == 0.0
    assert study.mean == speedup


@settings(max_examples=200, deadline=None)
@given(positive, positive)
def test_relative_improvement_matches_definition(new, old):
    exact = float(Fraction(new) / Fraction(old) - 1)
    assert math.isclose(relative_improvement(new, old), exact,
                        rel_tol=1e-9, abs_tol=1e-12)
