"""Unit tests for aggregate statistics."""

import math

import pytest

from repro.stats.aggregate import (
    arith_mean,
    geomean,
    geomean_speedup,
    relative_improvement,
    speedups,
)
from repro.stats.result import SimResult


def result(cycles, workload):
    return SimResult("m", "c", workload, cycles, 1000)


def test_geomean_basic():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == pytest.approx(3.0)
    assert geomean([1.0] * 10) == pytest.approx(1.0)


def test_geomean_errors():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([-1.0])


def test_geomean_is_order_invariant():
    values = [0.5, 2.0, 1.3, 0.9]
    assert geomean(values) == pytest.approx(geomean(list(reversed(values))))


def test_speedups_common_workloads_only():
    new = {"a": result(500, "a"), "b": result(250, "b")}
    old = {"a": result(1000, "a"), "c": result(100, "c")}
    assert speedups(new, old) == {"a": 2.0}


def test_geomean_speedup():
    new = {"a": result(500, "a"), "b": result(500, "b")}
    old = {"a": result(1000, "a"), "b": result(2000, "b")}
    assert geomean_speedup(new, old) == pytest.approx(math.sqrt(8.0))


def test_arith_mean():
    assert arith_mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        arith_mean([])


def test_relative_improvement():
    assert relative_improvement(1.18, 1.0) == pytest.approx(0.18)
    assert relative_improvement(0.9, 1.0) == pytest.approx(-0.1)
    with pytest.raises(ValueError):
        relative_improvement(1.0, 0.0)
