"""Unit tests for SimResult."""

import pytest

from repro.stats.result import SimResult


def make(cycles, instructions=1000, workload="w", machine="m"):
    return SimResult(machine, "small", workload, cycles, instructions)


def test_ipc():
    assert make(500).ipc == 2.0
    assert make(0, instructions=0).ipc == 0.0


def test_speedup_over():
    fast, slow = make(500), make(1000)
    assert fast.speedup_over(slow) == 2.0
    assert slow.speedup_over(fast) == 0.5


def test_speedup_requires_matching_workload():
    with pytest.raises(ValueError, match="workload"):
        make(500).speedup_over(make(1000, workload="other"))


def test_speedup_requires_matching_instructions():
    with pytest.raises(ValueError, match="instruction counts"):
        make(500).speedup_over(make(1000, instructions=999))


def test_speedup_rejects_zero_cycles():
    with pytest.raises(ValueError, match="zero-cycle"):
        make(0).speedup_over(make(1000))


def test_as_dict():
    result = make(500)
    data = result.as_dict()
    assert data["cycles"] == 500
    assert data["ipc"] == 2.0
    assert data["machine"] == "m"
    assert data["extra"] == {}


def test_from_dict_round_trip():
    result = make(500)
    result.extra["queues"] = {"q0to1": {"sends": 7}}
    rebuilt = SimResult.from_dict(result.as_dict())
    assert rebuilt == result
    assert rebuilt.ipc == result.ipc  # derived, not stored


def test_from_dict_survives_json_round_trip():
    import json
    rebuilt = SimResult.from_dict(
        json.loads(json.dumps(make(500).as_dict())))
    assert rebuilt.cycles == 500 and rebuilt.workload == "w"
