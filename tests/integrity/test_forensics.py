"""Crash dumps: writing, loading, rendering, and the CLI contract."""

import json

import pytest

from repro.__main__ import main
from repro.integrity.errors import SimulationHang
from repro.integrity.forensics import (DUMP_FORMAT, CrashDumpError,
                                       latest_crash_dump, load_crash_dump,
                                       render_crash_dump, write_crash_dump)


def _hang_error():
    return SimulationHang(
        "fgstp: no commit for 1501 cycles", machine="fgstp",
        cycles=2100, instructions=45, total=3000, detail="intercore",
        partial={"cycles": 2100, "instructions": 45},
        snapshot={"queues": [{"name": "q0to1", "pending": 3}]},
        context={"benchmark": "gcc", "length": 3000, "seed": 1,
                 "machine": "fgstp", "config": "small",
                 "chaos": "stuck_queue:after=0"})


def test_write_load_round_trip(tmp_path):
    path = write_crash_dump(_hang_error(), directory=tmp_path)
    assert path.parent == tmp_path
    dump = load_crash_dump(path)
    assert dump["format"] == DUMP_FORMAT
    assert dump["failure_class"] == "hang:intercore"
    assert dump["context"]["chaos"] == "stuck_queue:after=0"
    assert dump["snapshot"]["queues"][0]["name"] == "q0to1"


def test_write_merges_extra_context_over_errors_own(tmp_path):
    path = write_crash_dump(_hang_error(), directory=tmp_path,
                            context={"seed": 9, "note": "sweep"})
    dump = load_crash_dump(path)
    assert dump["context"]["seed"] == 9          # extra context wins
    assert dump["context"]["benchmark"] == "gcc"  # error's kept
    assert dump["context"]["note"] == "sweep"


def test_load_rejects_non_dumps(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(CrashDumpError, match="cannot read"):
        load_crash_dump(missing)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    with pytest.raises(CrashDumpError, match="not valid JSON"):
        load_crash_dump(garbage)
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(CrashDumpError, match=DUMP_FORMAT):
        load_crash_dump(foreign)


def test_latest_crash_dump_picks_newest(tmp_path):
    assert latest_crash_dump(tmp_path / "absent") is None
    import os
    first = write_crash_dump(_hang_error(), directory=tmp_path)
    second = write_crash_dump(_hang_error(), directory=tmp_path)
    os.utime(first, (1, 1))
    assert latest_crash_dump(tmp_path) == second


def test_render_names_the_failure_and_recipe(tmp_path):
    dump = load_crash_dump(write_crash_dump(_hang_error(),
                                            directory=tmp_path))
    text = render_crash_dump(dump)
    assert "hang:intercore" in text
    assert "fgstp" in text
    assert "45/3000 instructions in 2100 cycles" in text
    assert "replay recipe" in text
    assert "stuck_queue:after=0" in text


# -- CLI contract ------------------------------------------------------

def test_cli_forensics_renders_latest(tmp_path, capsys):
    write_crash_dump(_hang_error(), directory=tmp_path)
    assert main(["forensics", "--crash-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "hang:intercore" in out


def test_cli_forensics_without_dumps_is_usage_error(tmp_path, capsys):
    assert main(["forensics", "--crash-dir", str(tmp_path)]) == 2
    assert "no crash dumps" in capsys.readouterr().err


def test_cli_forensics_rejects_non_dump_file(tmp_path, capsys):
    bogus = tmp_path / "x.json"
    bogus.write_text("{}")
    assert main(["forensics", str(bogus),
                 "--crash-dir", str(tmp_path)]) == 2


def test_cli_simulate_on_hanging_config_exits_one(tmp_path, monkeypatch,
                                                  capsys):
    """Exit-code contract: a hang under `repro simulate` exits 1 and
    prints a one-line pointer to the crash dump it wrote."""
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_CHAOS", "stuck_queue:after=0")
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "1000")
    code = main(["simulate", "gcc", "--length", "800", "--warmup", "0",
                 "--config", "small", "--seed", "1"])
    assert code == 1
    err = capsys.readouterr().err
    assert "hang:intercore" in err
    assert "crash dump" in err
    dump_path = latest_crash_dump(tmp_path / ".repro_cache" / "crashes")
    assert dump_path is not None
    dump = load_crash_dump(dump_path)
    assert dump["context"]["chaos"] == "stuck_queue:after=0"
    assert dump["context"]["benchmark"] == "gcc"


def test_cli_simulate_unknown_benchmark_is_usage_error(capsys):
    assert main(["simulate", "no-such-benchmark"]) == 2


def test_cli_simulate_healthy_run_exits_zero(tmp_path, monkeypatch,
                                             capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    code = main(["simulate", "gcc", "--length", "800", "--warmup", "0",
                 "--config", "small"])
    assert code == 0
    assert "speedup" in capsys.readouterr().out
