"""The SimulationError hierarchy: classification, enrichment, pickling."""

import pickle

import pytest

from repro.integrity.errors import (PipelineDrainError, SimulationError,
                                    SimulationHang, SimulationLimit)


def test_hierarchy_is_runtime_error():
    # Pre-existing callers catch RuntimeError; the structured errors
    # must keep matching.
    for cls in (SimulationError, SimulationHang, SimulationLimit,
                PipelineDrainError):
        assert issubclass(cls, RuntimeError)
    with pytest.raises(RuntimeError, match="exceeded"):
        raise SimulationLimit("fgstp: exceeded 100 cycles")


def test_failure_class():
    assert SimulationError("x").failure_class == "error"
    assert SimulationHang("x").failure_class == "hang"
    assert SimulationHang("x", detail="intercore").failure_class \
        == "hang:intercore"
    assert SimulationLimit("x").failure_class == "limit"
    assert PipelineDrainError("x").failure_class == "drain"


def test_attach_fills_only_unset_fields():
    error = SimulationHang("stuck", machine="fgstp", cycles=123)
    error.attach(machine="other", cycles=999, instructions=7,
                 detail="intercore")
    assert error.machine == "fgstp"      # raiser's value wins
    assert error.cycles == 123
    assert error.instructions == 7        # was unset: filled
    assert error.detail == "intercore"


def test_attach_merges_dict_payloads_raiser_wins():
    error = SimulationHang("stuck", snapshot={"core": {"rob": 5}})
    error.attach(snapshot={"core": {"rob": 99}, "fetch": {"cursor": 3}})
    assert error.snapshot["core"] == {"rob": 5}
    assert error.snapshot["fetch"] == {"cursor": 3}


def test_attach_rejects_unknown_fields():
    with pytest.raises(TypeError, match="unknown"):
        SimulationError("x").attach(bogus=1)


def test_as_dict_round_trips_payload():
    error = SimulationLimit("over", machine="single", cycles=10,
                            instructions=4, total=100,
                            partial={"cycles": 10},
                            snapshot={"cycle": 10},
                            context={"benchmark": "gcc"})
    payload = error.as_dict()
    assert payload["failure_class"] == "limit"
    assert payload["message"] == "over"
    assert payload["total"] == 100
    assert payload["partial"] == {"cycles": 10}
    assert payload["context"] == {"benchmark": "gcc"}


def test_pickle_preserves_everything():
    # Errors cross the parallel engine's process boundary.
    error = SimulationHang("stuck", machine="fgstp", cycles=42,
                           instructions=7, total=100,
                           partial={"cycles": 42},
                           snapshot={"queues": [1, 2]},
                           detail="intercore",
                           context={"seed": 3})
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is SimulationHang
    assert str(clone) == "stuck"
    assert clone.as_dict() == error.as_dict()
