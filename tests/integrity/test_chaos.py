"""Fault injection proves the watchdog end to end.

Each injected fault must produce exactly the structured failure it is
designed to provoke — and the correctness-preserving perturbations must
NOT trip the watchdog (no false positives).
"""

import pytest

from repro.fgstp.orchestrator import FgStpMachine
from repro.integrity.chaos import (ChaosError, ChaosSpec, apply_chaos,
                                   maybe_apply_env_chaos, spec_from_env)
from repro.integrity.errors import SimulationHang
from repro.uarch.pipeline.machine import SingleCoreMachine
from repro.workloads.generator import generate_trace

WINDOW = 1_500  # small watchdog window keeps chaos tests fast


# -- spec parsing ------------------------------------------------------

def test_spec_parses_and_round_trips():
    spec = ChaosSpec.parse("stuck_queue:after=3,queue=1")
    assert spec.kind == "stuck_queue"
    assert spec.get("after", 0) == 3
    assert spec.get("queue", -1) == 1
    assert spec.get("missing", 42) == 42
    assert ChaosSpec.parse(str(spec)) == spec
    assert ChaosSpec.parse("commit_stall").params == ()


def test_spec_rejects_garbage():
    with pytest.raises(ChaosError, match="unknown chaos kind"):
        ChaosSpec.parse("melt_rob")
    with pytest.raises(ChaosError, match="key=value"):
        ChaosSpec.parse("stuck_queue:after")
    with pytest.raises(ChaosError, match="integer"):
        ChaosSpec.parse("stuck_queue:after=soon")


def test_spec_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert spec_from_env() is None
    monkeypatch.setenv("REPRO_CHAOS", "drop_sends:every=2")
    assert spec_from_env() == ChaosSpec.parse("drop_sends:every=2")


def test_strict_apply_rejects_inapplicable_kind(small_config):
    machine = SingleCoreMachine(small_config)
    with pytest.raises(ChaosError, match="does not apply"):
        apply_chaos(machine, ChaosSpec.parse("stuck_queue"))
    # Non-strict (the env path) skips silently.
    apply_chaos(machine, ChaosSpec.parse("stuck_queue"), strict=False)


def test_env_chaos_applies_to_built_machine(monkeypatch, small_config):
    monkeypatch.setenv("REPRO_CHAOS", "stuck_queue:after=0")
    machine = maybe_apply_env_chaos(
        FgStpMachine(small_config, watchdog_window=WINDOW))
    with pytest.raises(SimulationHang):
        machine.run(generate_trace("gcc", 1000))


# -- hang-provoking faults ---------------------------------------------

def test_stuck_queue_livelock_detected_within_10k_cycles(small_config):
    """The headline acceptance criterion: an inter-core livelock is
    flagged as a structured hang in well under 10k cycles, not 200M."""
    machine = FgStpMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(machine, ChaosSpec.parse("stuck_queue:after=0"))
    trace = generate_trace("gcc", 2000)
    with pytest.raises(SimulationHang) as excinfo:
        machine.run(trace)
    error = excinfo.value
    assert error.cycles < 10_000
    assert error.failure_class == "hang:intercore"
    assert error.instructions < len(trace)
    assert len(error.snapshot["queues"]) == 2
    assert error.partial["cycles"] == error.cycles


def test_drop_sends_loses_a_value_and_hangs(small_config):
    machine = FgStpMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(machine, ChaosSpec.parse("drop_sends:every=1"))
    with pytest.raises(SimulationHang) as excinfo:
        machine.run(generate_trace("gcc", 2000))
    assert excinfo.value.cycles < 10_000


def test_commit_stall_starves_fgstp_commit_gate(small_config):
    machine = FgStpMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(machine, ChaosSpec.parse("commit_stall:after=50"))
    with pytest.raises(SimulationHang) as excinfo:
        machine.run(generate_trace("gcc", 2000))
    error = excinfo.value
    assert error.failure_class == "hang:intercore"
    assert error.instructions <= 50 + 1


def test_commit_stall_on_single_core_machine(small_config):
    machine = SingleCoreMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(machine, ChaosSpec.parse("commit_stall:after=100"))
    with pytest.raises(SimulationHang) as excinfo:
        machine.run(generate_trace("gcc", 2000))
    error = excinfo.value
    assert error.failure_class == "hang:core"
    # The injector stalls at commit-group granularity, so retirement may
    # overshoot ``after`` by at most one group.
    assert error.instructions <= 100 + small_config.commit_width


# -- perturbations that must NOT hang ----------------------------------

def test_duplicate_sends_is_not_a_false_positive(small_config):
    """Burning queue bandwidth slows the run but preserves progress;
    the watchdog must stay silent."""
    trace = generate_trace("gcc", 2000)
    clean = FgStpMachine(small_config, watchdog_window=WINDOW).run(trace)
    noisy = FgStpMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(noisy, ChaosSpec.parse("duplicate_sends:every=1"))
    result = noisy.run(trace)
    assert result.instructions == clean.instructions == len(trace)
    # Timing may shift a little either way (ghost copies perturb queue
    # ordering); what matters is that the run completes un-flagged.
    assert abs(result.cycles - clean.cycles) < clean.cycles


def test_corrupt_specdep_squash_storm_still_progresses(small_config):
    """Forcing 'speculate' on every load provokes violations, but the
    squash/recovery path must keep committing."""
    machine = FgStpMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(machine, ChaosSpec.parse("corrupt_specdep:sync=0"))
    trace = generate_trace("gcc", 2000)
    result = machine.run(trace)
    assert result.instructions == len(trace)


def test_corrupt_specdep_forced_sync_still_progresses(small_config):
    machine = FgStpMachine(small_config, watchdog_window=WINDOW)
    apply_chaos(machine, ChaosSpec.parse("corrupt_specdep:sync=1"))
    trace = generate_trace("gcc", 2000)
    result = machine.run(trace)
    assert result.instructions == len(trace)
