"""Trace minimization: the ddmin core and the crash-dump replay path."""

import json

import pytest

from repro.__main__ import main
from repro.integrity.chaos import ChaosSpec, apply_chaos
from repro.integrity.errors import SimulationHang, SimulationLimit
from repro.integrity.forensics import write_crash_dump
from repro.integrity.minimize import (minimize_failure, replay_run_fn,
                                      trace_from_context)
from repro.isa.opcodes import OpClass
from repro.trace.io import read_trace
from repro.trace.record import TraceRecord
from repro.workloads.generator import generate_trace


def _alu_trace(n):
    return [TraceRecord(i, i, OpClass.IALU, 1, (1,)) for i in range(n)]


def _needs_pcs(*pcs):
    """A run_fn failing exactly when all *pcs* are present."""
    required = set(pcs)

    def run(candidate):
        if required <= {record.pc for record in candidate}:
            raise SimulationHang("synthetic", detail="unit")

    return run


def test_ddmin_shrinks_to_the_minimal_pair():
    result = minimize_failure(_alu_trace(40), _needs_pcs(3, 11))
    assert result.reproduced
    assert result.failure_class == "hang:unit"
    assert result.original_length == 40
    assert result.minimized_length == 2
    assert {record.pc for record in result.records} == {3, 11}
    # Minimized traces are re-sequenced (machines need dense seq).
    assert [record.seq for record in result.records] == [0, 1]
    assert result.last_error is not None


def test_ddmin_single_record_trigger():
    result = minimize_failure(_alu_trace(33), _needs_pcs(17))
    assert result.minimized_length == 1
    assert result.records[0].pc == 17


def test_non_reproducing_failure_returns_empty():
    def healthy(candidate):
        return None

    result = minimize_failure(_alu_trace(20), healthy)
    assert not result.reproduced
    assert result.records == []
    assert result.tests_run == 1


def test_failure_class_mismatch_stops_immediately():
    result = minimize_failure(_alu_trace(20), _needs_pcs(3),
                              failure_class="limit")
    assert not result.reproduced


def test_class_switch_mid_search_is_not_accepted():
    """A candidate that fails *differently* must be rejected."""
    def run(candidate):
        pcs = {record.pc for record in candidate}
        if {3, 11} <= pcs:
            raise SimulationHang("hang", detail="unit")
        if 3 in pcs:
            raise SimulationLimit("other failure")

    result = minimize_failure(_alu_trace(40), run)
    assert result.reproduced
    assert result.failure_class == "hang:unit"
    assert {record.pc for record in result.records} == {3, 11}


def test_probe_budget_is_respected():
    result = minimize_failure(_alu_trace(200), _needs_pcs(7, 151),
                              max_tests=10)
    assert result.tests_run <= 10
    assert result.reproduced  # best-so-far result is kept


def test_end_to_end_replay_shrinks_injected_livelock(monkeypatch,
                                                     small_config):
    """Acceptance: the replay path reproduces a chaos hang from its
    recipe and shrinks the trace to <= 32 records failing identically."""
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "1000")
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    context = {"machine": "fgstp", "config": "small", "benchmark": "gcc",
               "length": 1500, "seed": 1, "chaos": "stuck_queue:after=0"}
    trace = trace_from_context(context)
    assert len(trace) == 1500
    result = minimize_failure(trace, replay_run_fn(context),
                              failure_class="hang:intercore")
    assert result.reproduced
    assert result.minimized_length <= 32
    assert result.last_error.failure_class == "hang:intercore"


def test_trace_from_context_requires_a_recipe():
    with pytest.raises(KeyError):
        trace_from_context({})
    with pytest.raises(KeyError, match="length"):
        trace_from_context({"benchmark": "gcc"})


def test_cli_minimize_writes_fixture_and_sidecar(tmp_path, monkeypatch,
                                                 capsys):
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "1000")
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    # Produce a real dump by running the chaos machine.
    from repro.fgstp.orchestrator import FgStpMachine
    from repro.uarch.params import small_core_config

    machine = FgStpMachine(small_core_config(), watchdog_window=1000)
    apply_chaos(machine, ChaosSpec.parse("stuck_queue:after=0"))
    with pytest.raises(SimulationHang) as excinfo:
        machine.run(generate_trace("gcc", 1500))
    write_crash_dump(
        excinfo.value, directory=tmp_path,
        context={"machine": "fgstp", "config": "small",
                 "benchmark": "gcc", "length": 1500, "seed": 1,
                 "chaos": "stuck_queue:after=0"})

    output = tmp_path / "fixture.min.trace"
    code = main(["minimize", "--crash-dir", str(tmp_path),
                 "--output", str(output)])
    assert code == 0
    fixture = read_trace(output)
    assert 0 < len(fixture) <= 32
    sidecar = json.loads(output.with_suffix(".json").read_text())
    assert sidecar["failure_class"] == "hang:intercore"
    assert sidecar["minimized_length"] == len(fixture)
    assert sidecar["context"]["chaos"] == "stuck_queue:after=0"
    assert "minimized 1500 ->" in capsys.readouterr().out

    # The fixture itself still fails the same way: a regression test.
    replay = replay_run_fn(sidecar["context"])
    with pytest.raises(SimulationHang):
        replay(fixture)


def test_cli_minimize_without_dumps_is_usage_error(tmp_path, capsys):
    assert main(["minimize", "--crash-dir", str(tmp_path)]) == 2


def test_cli_minimize_unreproducible_dump_exits_one(tmp_path, monkeypatch,
                                                    capsys):
    # A dump whose recipe runs cleanly (no chaos): nothing reproduces.
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    error = SimulationHang("stale", machine="fgstp", detail="intercore",
                           context={"machine": "fgstp", "config": "small",
                                    "benchmark": "gcc", "length": 400,
                                    "seed": 1})
    write_crash_dump(error, directory=tmp_path)
    assert main(["minimize", "--crash-dir", str(tmp_path)]) == 1
    assert "did not reproduce" in capsys.readouterr().err
