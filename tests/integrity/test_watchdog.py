"""Watchdog unit behaviour and the no-false-positive guarantee."""

from repro.fgstp.orchestrator import FgStpMachine
from repro.integrity.watchdog import (DEFAULT_WINDOW, ENV_WINDOW, Watchdog,
                                      window_from_env)
from repro.uarch.pipeline.machine import SingleCoreMachine
from repro.workloads.generator import generate_trace


def test_expires_only_after_a_full_quiet_window():
    dog = Watchdog(window=10)
    assert not dog.expired(0, 0)      # baseline
    assert not dog.expired(10, 0)     # exactly the window: not yet
    assert dog.expired(11, 0)         # one past: hang
    assert dog.stalled_for(11) == 11


def test_marker_change_resets_the_window():
    dog = Watchdog(window=10)
    dog.expired(0, 0)
    assert not dog.expired(9, 1)      # progress at cycle 9
    assert not dog.expired(19, 1)
    assert dog.expired(20, 1)


def test_any_marker_change_counts_including_decrease():
    dog = Watchdog(window=5)
    dog.expired(0, 10)
    assert not dog.expired(4, 3)      # marker moved (any change)
    assert not dog.expired(9, 3)
    assert dog.expired(10, 3)


def test_zero_window_disables():
    dog = Watchdog(window=0)
    assert not dog.enabled
    dog.expired(0, 0)
    assert not dog.expired(10 ** 9, 0)


def test_reset_forgets_progress_state():
    dog = Watchdog(window=5)
    dog.expired(0, 0)
    assert dog.expired(100, 0)
    dog.reset()
    assert not dog.expired(100, 0)    # fresh baseline at cycle 100
    assert not dog.expired(105, 0)
    assert dog.expired(106, 0)


def test_window_from_env(monkeypatch):
    monkeypatch.delenv(ENV_WINDOW, raising=False)
    assert window_from_env() == DEFAULT_WINDOW
    monkeypatch.setenv(ENV_WINDOW, "1234")
    assert window_from_env() == 1234
    assert Watchdog().window == 1234
    monkeypatch.setenv(ENV_WINDOW, "0")
    assert not Watchdog().enabled
    monkeypatch.setenv(ENV_WINDOW, "garbage")
    assert window_from_env() == DEFAULT_WINDOW
    # An explicit window beats the environment.
    monkeypatch.setenv(ENV_WINDOW, "7")
    assert Watchdog(window=99).window == 99


def test_no_false_positive_on_healthy_runs(small_config):
    """Default-window watchdog stays silent across normal machines."""
    trace = generate_trace("mcf", 3000)  # memory-hostile: longest gaps
    single = SingleCoreMachine(small_config).run(trace)
    fgstp = FgStpMachine(small_config).run(trace)
    assert single.instructions == len(trace)
    assert fgstp.instructions == len(trace)
