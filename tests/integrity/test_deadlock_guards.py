"""Cycle-limit and drain guards must fail *structurally*: the raised
error carries partial statistics (with a valid CPI-stack ledger) and a
pipeline snapshot, on every machine."""

import pytest

from repro.corefusion.machine import CoreFusionMachine
from repro.fgstp.orchestrator import FgStpMachine
from repro.integrity.errors import PipelineDrainError, SimulationLimit
from repro.isa.opcodes import OpClass
from repro.stats.cpistack import CPIStack
from repro.trace.record import TraceRecord
from repro.uarch.cache.hierarchy import CacheHierarchy
from repro.uarch.pipeline.core import CycleCore
from repro.uarch.pipeline.machine import SingleCoreMachine
from repro.uarch.pipeline.uop import Uop
from repro.workloads.generator import generate_trace


def _assert_valid_partial_stack(error):
    stack = CPIStack.from_dict(error.partial["cpistack"])
    assert stack.cycles == error.cycles
    stack.validate()  # every attributed cycle has exactly one cause


def test_single_core_limit_carries_partial_stats(small_config):
    trace = generate_trace("gcc", 500)
    machine = SingleCoreMachine(small_config, max_cycles=50)
    with pytest.raises(SimulationLimit) as excinfo:
        machine.run(trace)
    error = excinfo.value
    assert error.failure_class == "limit"
    assert error.machine == "single"
    assert error.cycles > 50
    assert error.total == 500
    assert 0 <= error.instructions < 500
    _assert_valid_partial_stack(error)
    assert error.snapshot["core"]["name"] == "single"
    assert error.snapshot["fetch"]["trace_length"] == 500
    assert isinstance(error.snapshot["last_committed"], list)


def test_fgstp_limit_carries_both_cores_and_queues(small_config):
    trace = generate_trace("gcc", 500)
    machine = FgStpMachine(small_config, max_cycles=60)
    with pytest.raises(SimulationLimit) as excinfo:
        machine.run(trace)
    error = excinfo.value
    assert error.failure_class == "limit"
    assert error.machine == "fgstp"
    _assert_valid_partial_stack(error)
    assert len(error.snapshot["cores"]) == 2
    assert len(error.snapshot["queues"]) == 2
    assert error.snapshot["frontend"]["trace_length"] == 500
    assert "partitioner" in error.snapshot


def test_corefusion_limit_is_structured(small_config):
    trace = generate_trace("gcc", 500)
    machine = CoreFusionMachine(small_config, max_cycles=50)
    with pytest.raises(SimulationLimit) as excinfo:
        machine.run(trace)
    error = excinfo.value
    assert error.machine == "corefusion"
    assert error.snapshot["core"]["name"] == "corefusion"
    _assert_valid_partial_stack(error)


def test_limit_message_still_matches_legacy_pattern(small_config):
    # The pre-existing guard tests catch RuntimeError matching
    # "exceeded"; keep that contract.
    machine = SingleCoreMachine(small_config, max_cycles=3)
    with pytest.raises(RuntimeError, match="exceeded"):
        machine.run(generate_trace("gcc", 200))


def test_core_drain_error_carries_core_snapshot(small_config):
    core = CycleCore(small_config, CacheHierarchy(small_config),
                     name="probe")
    record = TraceRecord(0, 0, OpClass.IALU, 1, (1,))
    core.push_fetched(Uop(record, 0), 0)
    with pytest.raises(PipelineDrainError, match="not drained") as excinfo:
        core.drain_check()
    error = excinfo.value
    assert error.failure_class == "drain"
    assert error.machine == "probe"
    snap = error.snapshot["core"]
    assert snap["name"] == "probe"
    assert snap["fetch_buffer"] == 1


def test_machine_enriches_core_drain_error(small_config):
    """The run wrapper attaches machine-level context without
    clobbering what the core recorded."""
    trace = generate_trace("gcc", 300)
    machine = SingleCoreMachine(small_config)
    original = machine.core.drain_check

    def leaky_drain():
        original()
        raise PipelineDrainError(
            "1 uops not drained", machine=machine.core.name,
            snapshot={"core": machine.core.snapshot()})

    machine.core.drain_check = leaky_drain
    with pytest.raises(PipelineDrainError) as excinfo:
        machine.run(trace)
    error = excinfo.value
    assert error.total == 300
    assert error.cycles > 0
    assert "core" in error.snapshot       # from the raiser
    assert "fetch" in error.snapshot      # merged in by the machine
    _assert_valid_partial_stack(error)
