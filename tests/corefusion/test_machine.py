"""Tests for the Core Fusion baseline."""

import pytest

from repro.corefusion.machine import (
    CoreFusionMachine,
    default_crossbar_latency,
    default_frontend_overhead,
    default_lsq_penalty,
    fused_params,
    simulate_core_fusion,
)
from repro.uarch.params import medium_core_config, small_core_config
from repro.uarch.pipeline.machine import simulate_single_core
from repro.workloads.generator import generate_trace


def test_fused_params_double_resources():
    base = small_core_config()
    fused = fused_params(base)
    assert fused.fetch_width == 2 * base.fetch_width
    assert fused.issue_width == 2 * base.issue_width
    assert fused.rob_entries == 2 * base.rob_entries
    assert fused.lsq_entries == 2 * base.lsq_entries
    assert fused.l1d.size_bytes == 2 * base.l1d.size_bytes
    for pool, count in base.fu_pool.items():
        assert fused.fu_pool[pool] == 2 * count


def test_fused_params_add_overheads():
    base = small_core_config()
    fused = fused_params(base)
    assert fused.mispredict_penalty > base.mispredict_penalty
    assert fused.l1d.hit_latency > base.l1d.hit_latency


def test_default_overheads_scale_with_width():
    small, medium = small_core_config(), medium_core_config()
    assert default_frontend_overhead(medium) > \
        default_frontend_overhead(small)
    assert default_crossbar_latency(medium) >= \
        default_crossbar_latency(small)
    assert default_lsq_penalty(medium) >= default_lsq_penalty(small)


def test_fusion_beats_single_on_ilp_rich_code():
    trace = generate_trace("hmmer", 8000)
    base = medium_core_config()
    single = simulate_single_core(trace, base, warmup=3000)
    fused = simulate_core_fusion(trace, base, warmup=3000)
    assert fused.cycles < single.cycles


def test_fusion_overhead_hurts_at_extreme_settings():
    trace = generate_trace("sjeng", 6000)
    base = medium_core_config()
    cheap = simulate_core_fusion(trace, base, warmup=2000,
                                 frontend_overhead=0)
    costly = simulate_core_fusion(trace, base, warmup=2000,
                                  frontend_overhead=30)
    assert costly.cycles > cheap.cycles


def test_crossbar_latency_hurts():
    trace = generate_trace("gcc", 6000)
    base = medium_core_config()
    fast = simulate_core_fusion(trace, base, warmup=2000,
                                operand_crossbar_latency=0)
    slow = simulate_core_fusion(trace, base, warmup=2000,
                                operand_crossbar_latency=10)
    assert slow.cycles > fast.cycles


def test_result_metadata():
    trace = generate_trace("gcc", 1500)
    base = small_core_config()
    result = simulate_core_fusion(trace, base, workload="gcc")
    assert result.machine == "corefusion"
    assert result.config == "small"
    assert result.instructions == 1500
    fusion = result.extra["fusion"]
    assert fusion["frontend_overhead"] == default_frontend_overhead(base)
    assert fusion["operand_crossbar_latency"] == \
        default_crossbar_latency(base)


def test_deterministic():
    trace = generate_trace("milc", 2000)
    base = small_core_config()
    a = simulate_core_fusion(trace, base)
    b = simulate_core_fusion(trace, base)
    assert a.cycles == b.cycles


def test_machine_reuse_not_required():
    machine = CoreFusionMachine(small_core_config())
    trace = generate_trace("gcc", 800)
    result = machine.run(trace)
    assert result.instructions == 800
