"""Semantic tests for individual arithmetic operations."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.interpreter import run_program


def compute(setup, op, check_reg="r3"):
    program = assemble(f"{setup}\n{op}\nhalt")
    return run_program(program).register(check_reg)


@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 7, 5, 12),
    ("sub", 7, 5, 2),
    ("and", 0b1100, 0b1010, 0b1000),
    ("or", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("shl", 3, 2, 12),
    ("shr", 12, 2, 3),
    ("slt", 3, 5, 1),
    ("slt", 5, 3, 0),
    ("min", 4, 9, 4),
    ("max", 4, 9, 9),
    ("mul", 6, 7, 42),
    ("div", 43, 6, 7),
    ("rem", 43, 6, 1),
])
def test_binary_int_ops(op, a, b, expected):
    assert compute(f"li r1, {a}\nli r2, {b}",
                   f"{op} r3, r1, r2") == expected


def test_signed_division_truncates_toward_zero():
    assert compute("li r1, -7\nli r2, 2", "div r3, r1, r2") == -3
    assert compute("li r1, -7\nli r2, 2", "rem r3, r1, r2") == -1


def test_sar_arithmetic_shift():
    assert compute("li r1, -8\nli r2, 1", "sar r3, r1, r2") == -4


def test_shr_is_logical():
    value = compute("li r1, -1\nli r2, 63", "shr r3, r1, r2")
    assert value == 1


def test_64bit_wraparound():
    # (2^63 - 1) + 1 wraps to -(2^63).
    value = compute(
        "li r1, 0x7fffffffffffffff\nli r2, 1", "add r3, r1, r2")
    assert value == -(1 << 63)


def test_mulh_high_bits():
    value = compute("li r1, 0x100000000\nli r2, 0x100000000",
                    "mulh r3, r1, r2")
    assert value == 1


@pytest.mark.parametrize("op,a,b,expected", [
    ("fadd", 3, 4, 7.0),
    ("fsub", 3, 4, -1.0),
    ("fmul", 3, 4, 12.0),
    ("fdiv", 12, 4, 3.0),
    ("fmin", 3, 4, 3.0),
    ("fmax", 3, 4, 4.0),
])
def test_binary_fp_ops(op, a, b, expected):
    program = assemble(f"""
    fli f1, {a}
    fli f2, {b}
    {op} f3, f1, f2
    halt
""")
    assert run_program(program).register("f3") == pytest.approx(expected)


def test_fsqrt():
    program = assemble("fli f1, 16\nfsqrt f3, f1, f1\nhalt")
    assert run_program(program).register("f3") == pytest.approx(4.0)


def test_fmadd_accumulates_into_dest():
    program = assemble("""
    fli f1, 3
    fli f2, 4
    fli f3, 10
    fmadd f3, f1, f2
    halt
""")
    assert run_program(program).register("f3") == pytest.approx(22.0)


@pytest.mark.parametrize("op,a,b,taken", [
    ("beq", 5, 5, True), ("beq", 5, 6, False),
    ("bne", 5, 6, True), ("bne", 5, 5, False),
    ("blt", 4, 5, True), ("blt", 5, 4, False),
    ("bge", 5, 4, True), ("bge", 4, 5, False),
    ("blt", -1, 0, True),
    ("bltu", -1, 0, False),  # -1 is huge unsigned
    ("bgeu", -1, 0, True),
])
def test_branch_conditions(op, a, b, taken):
    program = assemble(f"""
    li r1, {a}
    li r2, {b}
    {op} r1, r2, yes
    li r3, 0
    halt
yes:
    li r3, 1
    halt
""")
    assert run_program(program).register("r3") == (1 if taken else 0)
