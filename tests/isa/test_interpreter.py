"""Unit tests for the functional interpreter: control flow and traces."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import ExecutionError
from repro.isa.interpreter import Interpreter, run_program
from repro.isa.opcodes import OpClass
from repro.trace.record import validate_trace


def run(source, **kwargs):
    return run_program(assemble(source), **kwargs)


def test_simple_loop_sums():
    result = run("""
    li r1, 0
    li r2, 10
    li r3, 0
loop:
    add r3, r3, r1
    addi r1, r1, 1
    bne r1, r2, loop
    halt
""")
    assert result.register("r3") == 45


def test_trace_is_valid_and_matches_length():
    result = run("li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt")
    validate_trace(result.trace)
    assert result.instruction_count == 4
    assert result.register("r3") == 3


def test_r0_stays_zero():
    result = run("li r0, 99\nadd r1, r0, r0\nhalt")
    assert result.register("r0") == 0
    assert result.register("r1") == 0


def test_memory_roundtrip():
    result = run("""
    li r1, 1234
    li r2, 64
    st r1, 0(r2)
    ld r3, 0(r2)
    halt
""")
    assert result.register("r3") == 1234


def test_byte_memory():
    result = run("""
    li r1, 511
    li r2, 64
    stb r1, 0(r2)
    ldb r3, 0(r2)
    halt
""")
    assert result.register("r3") == 255  # truncated to one byte


def test_fp_roundtrip():
    result = run("""
    fli f1, 3
    fli f2, 4
    fmul f3, f1, f2
    li r2, 64
    fst f3, 0(r2)
    fld f4, 0(r2)
    halt
""")
    assert result.register("f4") == pytest.approx(12.0)


def test_call_ret_flow():
    result = run("""
    li r1, 5
    call double
    call double
    halt
double:
    add r1, r1, r1
    ret
""")
    assert result.register("r1") == 20


def test_indirect_jump():
    result = run("""
    li r5, 3
    jr r5
    li r1, 111
target:
    li r1, 222
    halt
""")
    assert result.register("r1") == 222


def test_branch_records_target_and_taken():
    result = run("""
    li r1, 0
    li r2, 2
loop:
    addi r1, r1, 1
    bne r1, r2, loop
    halt
""")
    branches = [r for r in result.trace if r.op_class is OpClass.BRANCH]
    assert len(branches) == 2
    assert branches[0].taken and branches[0].target == 2
    assert not branches[1].taken and branches[1].target is None


def test_data_init_via_word_directive():
    result = run("""
.word 128 777
    li r2, 128
    ld r1, 0(r2)
    halt
""")
    assert result.register("r1") == 777


def test_out_of_bounds_memory_raises():
    with pytest.raises(ExecutionError):
        run(".data 128\nli r2, 1000\nld r1, 0(r2)\nhalt")


def test_negative_address_raises():
    with pytest.raises(ExecutionError):
        run("li r2, -8\nld r1, 0(r2)\nhalt")


def test_division_by_zero_raises():
    with pytest.raises(ExecutionError):
        run("li r1, 5\nli r2, 0\ndiv r3, r1, r2\nhalt")


def test_instruction_budget_enforced():
    source = "spin: jmp spin\nhalt"
    with pytest.raises(ExecutionError):
        Interpreter(max_instructions=100).run(assemble(source))


def test_entry_label():
    result = run_program(assemble("""
main:
    li r1, 1
    halt
alt:
    li r1, 2
    halt
"""), entry="alt")
    assert result.register("r1") == 2


def test_mix_counts_classes():
    result = run("li r1, 1\nli r2, 64\nst r1, 0(r2)\nld r3, 0(r2)\nhalt")
    mix = result.mix()
    assert mix[OpClass.LOAD] == 1
    assert mix[OpClass.STORE] == 1
    assert mix[OpClass.IALU] == 2
