"""Unit tests for the opcode table."""

import pytest

from repro.isa.opcodes import (
    OPCODES,
    OpClass,
    OperandShape,
    is_opcode,
    opcode_info,
)


def test_table_is_nonempty_and_closed():
    assert len(OPCODES) > 30
    for name, info in OPCODES.items():
        assert info.name == name
        assert isinstance(info.op_class, OpClass)
        assert isinstance(info.shape, OperandShape)


def test_core_opcodes_present():
    for name in ("add", "addi", "li", "mul", "div", "fadd", "fmul",
                 "fdiv", "ld", "st", "beq", "bne", "jmp", "call", "ret",
                 "halt", "nop"):
        assert is_opcode(name), name


def test_opcode_info_lookup():
    info = opcode_info("add")
    assert info.op_class is OpClass.IALU
    assert info.shape is OperandShape.RRR
    assert not info.fp


def test_unknown_opcode_raises():
    with pytest.raises(KeyError):
        opcode_info("not_an_opcode")


def test_memory_classification():
    assert opcode_info("ld").op_class.is_memory
    assert opcode_info("st").op_class.is_memory
    assert opcode_info("st").store
    assert not opcode_info("ld").store
    assert not opcode_info("add").op_class.is_memory


def test_control_classification():
    assert opcode_info("beq").is_branch
    assert opcode_info("jmp").is_jump
    assert opcode_info("beq").op_class.is_control
    assert not opcode_info("add").op_class.is_control


def test_fp_opcodes_marked():
    for name in ("fadd", "fmul", "fdiv", "fld", "fst", "fli"):
        assert opcode_info(name).fp, name
    for name in ("add", "ld", "st", "mul"):
        assert not opcode_info(name).fp, name


def test_store_opcodes_consistent():
    for name, info in OPCODES.items():
        if info.store:
            assert info.op_class is OpClass.STORE, name


def test_opclass_values_stable():
    # Trace serialisation depends on these staying fixed.
    assert int(OpClass.IALU) == 0
    assert int(OpClass.LOAD) == 6
    assert int(OpClass.STORE) == 7
    assert int(OpClass.BRANCH) == 8
    assert int(OpClass.NOP) == 10
