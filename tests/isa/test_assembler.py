"""Unit tests for the assembler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import AssemblerError
from repro.isa.opcodes import OpClass
from repro.isa.registers import LINK_REG


def test_empty_program_rejected():
    with pytest.raises(AssemblerError):
        assemble("")


def test_basic_rrr():
    program = assemble("add r1, r2, r3\nhalt")
    instr = program.instructions[0]
    assert instr.name == "add"
    assert instr.dst == 1
    assert instr.srcs == (2, 3)


def test_immediate_forms():
    program = assemble("addi r1, r2, 42\nli r3, -7\nhalt")
    assert program.instructions[0].imm == 42
    assert program.instructions[1].imm == -7
    assert program.instructions[1].srcs == ()


def test_hex_immediates():
    program = assemble("li r1, 0xff\nhalt")
    assert program.instructions[0].imm == 255


def test_memory_operands():
    program = assemble("ld r1, 8(r2)\nst r3, -16(sp)\nhalt")
    load = program.instructions[0]
    assert load.dst == 1 and load.srcs == (2,) and load.imm == 8
    store = program.instructions[1]
    assert store.dst is None
    assert store.srcs == (30, 3)  # (base, value)
    assert store.imm == -16


def test_labels_resolve():
    program = assemble("""
start:
    addi r1, r1, 1
    bne r1, r2, start
    halt
""")
    branch = program.instructions[1]
    assert branch.label is None
    assert branch.imm == 0  # start


def test_label_prefixing_instruction():
    program = assemble("top: addi r1, r1, 1\njmp top\nhalt")
    assert program.labels["top"] == 0
    assert program.instructions[1].imm == 0


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("jmp nowhere\nhalt")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\na:\nhalt")


def test_call_and_ret():
    program = assemble("""
    call fn
    halt
fn:
    ret
""")
    call = program.instructions[0]
    assert call.dst == LINK_REG
    assert call.imm == 2
    ret = program.instructions[2]
    assert ret.srcs == (LINK_REG,)


def test_comments_and_blank_lines():
    program = assemble("""
# leading comment

    li r1, 5   # trailing comment
    halt
""")
    assert len(program.instructions) == 2


def test_unknown_opcode_message_carries_line():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("li r1, 1\nfrobnicate r1\nhalt")
    assert "line 2" in str(excinfo.value)


def test_wrong_operand_count():
    with pytest.raises(AssemblerError):
        assemble("add r1, r2\nhalt")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError):
        assemble("ld r1, r2\nhalt")


def test_directives():
    program = assemble("""
.name mytest
.data 4096
.word 16 99
    halt
""")
    assert program.name == "mytest"
    assert program.data_size == 4096
    assert program.data_init[16] == 99


def test_unknown_directive():
    with pytest.raises(AssemblerError):
        assemble(".bogus 1\nhalt")


def test_branch_op_class():
    program = assemble("x: beq r1, r2, x\nhalt")
    assert program.instructions[0].op_class is OpClass.BRANCH


def test_mov_two_operands():
    program = assemble("mov r1, r2\nhalt")
    instr = program.instructions[0]
    assert instr.dst == 1 and instr.srcs == (2,)
