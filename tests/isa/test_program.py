"""Unit tests for the Program container."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import ProgramError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode_info
from repro.isa.program import INSTRUCTION_BYTES, Program, find_label


def test_byte_pc():
    assert Program.byte_pc(0) == 0
    assert Program.byte_pc(3) == 3 * INSTRUCTION_BYTES


def test_label_index():
    program = assemble("a:\nhalt")
    assert program.label_index("a") == 0
    with pytest.raises(ProgramError):
        program.label_index("missing")


def test_find_label():
    program = assemble("a:\nhalt")
    assert find_label(program, "a") == 0
    assert find_label(program, "b") is None


def test_validate_rejects_unresolved_label():
    program = Program(instructions=[
        Instruction(opcode_info("jmp"), None, (), 0, "somewhere"),
    ])
    with pytest.raises(ProgramError):
        program.validate()


def test_validate_rejects_out_of_range_target():
    program = Program(instructions=[
        Instruction(opcode_info("jmp"), None, (), 5, None),
        Instruction(opcode_info("halt"), None, (), 0, None),
    ])
    with pytest.raises(ProgramError):
        program.validate()


def test_validate_rejects_empty():
    with pytest.raises(ProgramError):
        Program().validate()


def test_resolve_labels_idempotent():
    program = assemble("x: jmp x\nhalt")
    before = list(program.instructions)
    program.resolve_labels()
    assert program.instructions == before


def test_listing_contains_labels_and_instructions():
    program = assemble("loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt")
    listing = program.listing()
    assert "loop:" in listing
    assert "addi" in listing
    assert "halt" in listing


def test_len_and_getitem():
    program = assemble("li r1, 1\nhalt")
    assert len(program) == 2
    assert program[0].name == "li"
