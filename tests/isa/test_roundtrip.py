"""Property tests: asm -> Program -> disasm -> asm is stable.

The disassembler promises round-trippable output: re-assembling it
reproduces the same instruction list, data segment and name, and
disassembling *that* is a textual fixed point (labels are already
canonical after one trip).  Hypothesis drives randomly shaped programs
— every operand shape, labels in arbitrary positions, data
initialisers — through the loop.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble, disassemble

_INT_REGS = tuple(f"r{i}" for i in range(32))
_FP_REGS = tuple(f"f{i}" for i in range(32))

_RRR_INT = ("add", "sub", "and", "or", "xor", "shl", "shr", "sar",
            "slt", "sltu", "min", "max", "mul", "mulh", "div", "rem")
_RRI = ("addi", "andi", "ori", "xori", "shli", "shri", "slti")
_RRR_FP = ("fadd", "fsub", "fmin", "fmax", "fcvt", "fmul", "fmadd",
           "fdiv", "fsqrt")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

_KINDS = ("rrr", "rri", "li", "mov", "fp", "fli", "load", "store",
          "fpload", "fpstore", "branch", "jmp", "call", "jr", "ret",
          "nop")


@st.composite
def programs(draw):
    """Source text of a random well-formed (not necessarily
    terminating — never executed) program."""
    int_reg = st.sampled_from(_INT_REGS)
    fp_reg = st.sampled_from(_FP_REGS)
    imm = st.integers(-4096, 4095)
    data_size = draw(st.sampled_from((64, 256, 1024)))
    disp = st.integers(0, data_size - 8)

    n = draw(st.integers(min_value=3, max_value=20))
    # Labels at arbitrary instruction indices; index n is the final
    # halt, so every drawn label is a legal transfer target.
    labelled = sorted(draw(st.sets(st.integers(0, n), max_size=4)))
    labels = {index: f"T{index}" for index in labelled}
    targets = st.sampled_from(sorted(labels.values())) if labels else None

    lines = [".name prop", f".data {data_size}"]
    for offset, value in draw(st.dictionaries(
            st.integers(0, max(0, data_size - 8)),
            st.integers(-2**31, 2**31), max_size=3)).items():
        lines.append(f".word {offset} {value}")

    for index in range(n):
        if index in labels:
            lines.append(f"{labels[index]}:")
        kind = draw(st.sampled_from(_KINDS))
        if kind in ("branch", "jmp", "call") and targets is None:
            kind = "rrr"
        if kind == "rrr":
            op = draw(st.sampled_from(_RRR_INT))
            line = (f"{op} {draw(int_reg)}, {draw(int_reg)}, "
                    f"{draw(int_reg)}")
        elif kind == "rri":
            op = draw(st.sampled_from(_RRI))
            line = (f"{op} {draw(int_reg)}, {draw(int_reg)}, "
                    f"{draw(imm)}")
        elif kind == "li":
            line = f"li {draw(int_reg)}, {draw(imm)}"
        elif kind == "mov":
            line = f"mov {draw(int_reg)}, {draw(int_reg)}"
        elif kind == "fp":
            op = draw(st.sampled_from(_RRR_FP))
            line = (f"{op} {draw(fp_reg)}, {draw(fp_reg)}, "
                    f"{draw(fp_reg)}")
        elif kind == "fli":
            line = f"fli {draw(fp_reg)}, {draw(imm)}"
        elif kind == "load":
            op = draw(st.sampled_from(("ld", "ldb")))
            line = (f"{op} {draw(int_reg)}, "
                    f"{draw(disp)}({draw(int_reg)})")
        elif kind == "store":
            op = draw(st.sampled_from(("st", "stb")))
            line = (f"{op} {draw(int_reg)}, "
                    f"{draw(disp)}({draw(int_reg)})")
        elif kind == "fpload":
            line = f"fld {draw(fp_reg)}, {draw(disp)}({draw(int_reg)})"
        elif kind == "fpstore":
            line = f"fst {draw(fp_reg)}, {draw(disp)}({draw(int_reg)})"
        elif kind == "branch":
            op = draw(st.sampled_from(_BRANCHES))
            line = (f"{op} {draw(int_reg)}, {draw(int_reg)}, "
                    f"{draw(targets)}")
        elif kind == "jmp":
            line = f"jmp {draw(targets)}"
        elif kind == "call":
            line = f"call {draw(targets)}"
        elif kind == "jr":
            line = f"jr {draw(int_reg)}"
        elif kind == "ret":
            line = "ret"
        else:
            line = "nop"
        lines.append(f"    {line}")
    if n in labels:
        lines.append(f"{labels[n]}:")
    lines.append("    halt")
    return "\n".join(lines) + "\n"


@settings(max_examples=60, deadline=None)
@given(programs())
def test_roundtrip_preserves_the_program(source):
    first = assemble(source)
    text = disassemble(first)
    second = assemble(text)
    assert second.instructions == first.instructions
    assert second.name == first.name
    assert second.data_size == first.data_size
    assert second.data_init == first.data_init


@settings(max_examples=60, deadline=None)
@given(programs())
def test_disassembly_is_a_textual_fixed_point(source):
    first = disassemble(assemble(source))
    second = disassemble(assemble(first))
    assert second == first


@settings(max_examples=30, deadline=None)
@given(programs())
def test_assembly_is_deterministic(source):
    assert assemble(source).instructions == assemble(source).instructions


ALL_SHAPES = """
.name shapes
.data 128
.word 0 7
entry:
    add r1, r2, r3
    addi r4, r1, -17
    li r5, 4095
    mov r6, r5
    fmadd f1, f2, f3
    fsqrt f4, f5, f6
    fli f7, -3
    ld r7, 8(r5)
    st r7, 16(r5)
    fld f8, 24(r5)
    fst f8, 32(r5)
    stb r1, 1(r5)
    ldb r2, 2(r5)
    beq r1, r2, entry
    jmp out
    call entry
    jr r31
    ret
    nop
out:
    halt
"""


def test_roundtrip_covers_every_operand_shape():
    first = assemble(ALL_SHAPES)
    text = disassemble(first)
    second = assemble(text)
    assert second.instructions == first.instructions
    assert disassemble(second) == text
    # The canonical labels point where the originals did.
    assert "L0" in text and "L19" in text
