"""Unit tests for register naming/numbering."""

import pytest

from repro.isa.errors import ProgramError
from repro.isa.registers import (
    LINK_REG,
    NUM_ARCH_REGS,
    NUM_INT_REGS,
    STACK_REG,
    ZERO_REG,
    fp_reg,
    int_reg,
    is_fp_reg,
    parse_register,
    register_name,
)


def test_int_reg_range():
    assert int_reg(0) == 0
    assert int_reg(31) == 31
    with pytest.raises(ProgramError):
        int_reg(32)
    with pytest.raises(ProgramError):
        int_reg(-1)


def test_fp_reg_offset():
    assert fp_reg(0) == NUM_INT_REGS
    assert fp_reg(31) == NUM_ARCH_REGS - 1
    with pytest.raises(ProgramError):
        fp_reg(32)


def test_is_fp_reg():
    assert not is_fp_reg(0)
    assert not is_fp_reg(31)
    assert is_fp_reg(32)
    assert is_fp_reg(63)
    assert not is_fp_reg(64)


@pytest.mark.parametrize("name,expected", [
    ("r0", 0), ("r5", 5), ("r31", 31),
    ("f0", 32), ("f31", 63),
    ("zero", ZERO_REG), ("ra", LINK_REG), ("sp", STACK_REG),
    ("R7", 7), ("F2", 34),  # case-insensitive
])
def test_parse_register(name, expected):
    assert parse_register(name) == expected


@pytest.mark.parametrize("bad", ["", "x1", "r", "r32", "f40", "reg1", "r-1"])
def test_parse_register_rejects(bad):
    with pytest.raises(ProgramError):
        parse_register(bad)


def test_register_name_roundtrip():
    for reg_id in range(NUM_ARCH_REGS):
        assert parse_register(register_name(reg_id)) == reg_id


def test_register_name_out_of_range():
    with pytest.raises(ProgramError):
        register_name(NUM_ARCH_REGS)
    with pytest.raises(ProgramError):
        register_name(-1)
