"""Shared fixtures for the whole test suite.

Traces and machine configurations are deliberately tiny: every test
must be fast.  Integration tests that need realistic sizes scale up
explicitly.
"""

import os

import pytest

from repro.isa.opcodes import OpClass

# Every machine run in the test suite validates its CPI-stack ledger
# (attributed commit slots must sum to cycles x width); worker
# processes spawned by the parallel engine inherit the flag.
os.environ.setdefault("REPRO_CPISTACK_CHECK", "1")
from repro.trace.record import TraceRecord
from repro.uarch.params import medium_core_config, small_core_config


@pytest.fixture
def small_config():
    return small_core_config()


@pytest.fixture
def medium_config():
    return medium_core_config()


def make_trace(specs):
    """Build a trace from compact per-instruction spec tuples.

    Each spec: ``(op_class, dst, srcs)`` for compute,
    ``("load"/"store", dst_or_none, srcs, addr)`` for memory,
    ``("branch", taken, target)`` for control.
    """
    records = []
    for seq, spec in enumerate(specs):
        kind = spec[0]
        if kind == "load":
            _, dst, srcs, addr = spec
            records.append(TraceRecord(seq, seq, OpClass.LOAD, dst,
                                       tuple(srcs), mem_addr=addr,
                                       mem_size=8))
        elif kind == "store":
            _, srcs, addr = spec
            records.append(TraceRecord(seq, seq, OpClass.STORE, None,
                                       tuple(srcs), mem_addr=addr,
                                       mem_size=8))
        elif kind == "branch":
            _, taken, target = spec
            records.append(TraceRecord(seq, seq, OpClass.BRANCH, None,
                                       (1, 2), taken=taken,
                                       target=target if taken else None))
        else:
            op_class, dst, srcs = spec
            records.append(TraceRecord(seq, seq, op_class, dst,
                                       tuple(srcs)))
    return records


@pytest.fixture
def linear_alu_trace():
    """Ten independent single-cycle ALU ops (maximum ILP)."""
    return make_trace([(OpClass.IALU, (i % 8) + 1, ()) for i in range(10)])


@pytest.fixture
def chain_trace():
    """Ten serially dependent ALU ops (zero ILP)."""
    return make_trace([(OpClass.IALU, 1, (1,)) for _ in range(10)])
