"""Exporter validity: Chrome trace-event JSON, Konata logs, JSONL."""

import json

import pytest

from repro.obs import PipelineTracer
from repro.obs.export import (chrome_trace, events_jsonl, konata_log,
                              write_chrome_trace)
from repro.obs.attach import run_traced
from repro.workloads.generator import generate_trace

_LENGTH, _WARMUP = 1200, 400


@pytest.fixture(scope="module")
def gcc_trace():
    return generate_trace("gcc", _LENGTH, 1)


@pytest.fixture(scope="module")
def traced_pair(gcc_trace):
    """Events from a single-core and an fgstp run of the same trace."""
    from repro.uarch.params import small_core_config

    base = small_core_config()
    events = {}
    for machine in ("single", "fgstp"):
        _, tracer = run_traced(machine, gcc_trace, base, workload="gcc",
                               warmup=_WARMUP)
        events[machine] = tracer.events()
    return events


def test_chrome_trace_round_trips_and_is_wellformed(traced_pair,
                                                    tmp_path):
    document = chrome_trace(traced_pair)
    path = tmp_path / "trace.json"
    write_chrome_trace(traced_pair, path)
    assert json.loads(path.read_text()) == \
        json.loads(json.dumps(document))
    events = document["traceEvents"]
    assert document["displayTimeUnit"]
    phases = {event["ph"] for event in events}
    assert {"M", "X", "i"} <= phases
    process_names = {event["args"]["name"] for event in events
                     if event["ph"] == "M"
                     and event["name"] == "process_name"}
    assert process_names == {"single", "fgstp"}
    for event in events:
        if event["ph"] == "X":
            assert event["dur"] >= 1
            assert event["ts"] >= 0


def test_chrome_trace_spans_cover_stages_and_instants(traced_pair):
    events = chrome_trace(traced_pair)["traceEvents"]
    span_categories = {event["cat"] for event in events
                       if event["ph"] == "X"}
    assert {"fetch", "dispatch", "execute"} <= span_categories
    instant_names = {event["name"] for event in events
                     if event["ph"] == "i"}
    assert "intercore.send" in instant_names
    assert "intercore.recv" in instant_names
    for event in events:
        if event["ph"] == "i":
            assert event["s"] == "p"


def test_konata_log_header_and_retirements(traced_pair):
    log = konata_log(traced_pair["fgstp"])
    lines = log.splitlines()
    assert lines[0] == "Kanata\t0004"
    assert lines[1].startswith("C=\t")
    kinds = {line.split("\t", 1)[0] for line in lines[2:]}
    assert {"I", "L", "S", "R", "C"} <= kinds
    retire_lines = [line for line in lines if line.startswith("R\t")]
    insert_lines = [line for line in lines if line.startswith("I\t")]
    assert len(retire_lines) == len(insert_lines) > 0


def test_events_jsonl_lines_parse(traced_pair):
    lines = list(events_jsonl(traced_pair["fgstp"]))
    assert lines
    kinds = set()
    for line in lines:
        payload = json.loads(line)
        assert "kind" in payload and "cycle" in payload
        kinds.add(payload["kind"])
    assert "uop" in kinds
    assert "intercore.send" in kinds


def test_empty_tracer_exports_cleanly():
    tracer = PipelineTracer()
    document = chrome_trace({"single": tracer.events()})
    assert [event for event in document["traceEvents"]
            if event["ph"] == "X"] == []
    assert konata_log(tracer.events()).startswith("Kanata\t0004")
    assert list(events_jsonl(tracer.events())) == []
