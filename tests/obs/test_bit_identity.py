"""The zero-overhead guarantee: tracing must not change results.

Every machine runs twice on the same trace — bare, and with a tracer
plus metrics registry attached — and the two ``SimResult``s must be
bit-identical.  Sweep cache keys are covered too: a plain job's key
must not change because trace support exists, and a traced job must
never share a cache entry with a plain one.
"""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.parallel import make_job
from repro.harness.runners import MACHINES, build_machine
from repro.obs import MetricsRegistry, PipelineTracer
from repro.workloads.generator import generate_trace

_SIZING = dict(length=1200, warmup=400)


@pytest.fixture(scope="module")
def gcc_trace():
    return generate_trace("gcc", _SIZING["length"], 1)


@pytest.mark.parametrize("machine", MACHINES)
def test_traced_run_is_bit_identical(machine, small_config, gcc_trace):
    bare = build_machine(machine, small_config).run(
        gcc_trace, workload="gcc", warmup=_SIZING["warmup"])
    tracer = PipelineTracer()
    observed = build_machine(
        machine, small_config, tracer=tracer,
        metrics=MetricsRegistry()).run(
        gcc_trace, workload="gcc", warmup=_SIZING["warmup"])
    assert observed.as_dict() == bare.as_dict()
    assert tracer.events(), f"{machine}: tracer recorded nothing"


@pytest.mark.parametrize("machine", MACHINES)
def test_sampled_tracer_also_bit_identical(machine, small_config,
                                           gcc_trace):
    bare = build_machine(machine, small_config).run(
        gcc_trace, workload="gcc", warmup=_SIZING["warmup"])
    tracer = PipelineTracer(capacity=64, sample_window=128,
                            sample_period=4)
    observed = build_machine(machine, small_config, tracer=tracer).run(
        gcc_trace, workload="gcc", warmup=_SIZING["warmup"])
    assert observed.as_dict() == bare.as_dict()


def test_plain_job_keys_unchanged_by_trace_field(small_config):
    config = ExperimentConfig(trace_length=1200, warmup=400, seed=1)
    plain = make_job("single", "gcc", small_config, config)
    traced = make_job("single", "gcc", small_config, config, trace=True)
    # A plain job must hash exactly as it did before trace support
    # existed: the field only contributes when set.
    assert plain.trace is False
    assert plain.key() != traced.key()
    assert traced.name.endswith("/trace")
    assert not plain.name.endswith("/trace")
    # Trace and oracle promotions compose into distinct keys.
    both = make_job("single", "gcc", small_config, config, oracle=True,
                    trace=True)
    assert len({plain.key(), traced.key(), both.key()}) == 3
