"""Cross-checks between the event stream and the CPI-stack ledger.

``REPRO_CPISTACK_CHECK`` is on for the whole suite (see
``tests/conftest.py``), so every run here already validates
``sum(slots) == cycles * width``; these tests additionally reconcile
the tracer's commit events against the ledger's retire slots — two
independent observers of the same retirement stream.
"""

import pytest

from repro.harness.runners import MACHINES, build_machine
from repro.obs import PipelineTracer
from repro.obs.events import RECONFIG, UOP
from repro.stats.cpistack import cpistack_of
from repro.workloads.generator import generate_trace

_LENGTH, _WARMUP = 1200, 400


@pytest.fixture(scope="module")
def gcc_trace():
    return generate_trace("gcc", _LENGTH, 1)


@pytest.mark.parametrize("machine", MACHINES)
def test_commit_events_match_retire_slots(machine, small_config,
                                          gcc_trace):
    """Every retire slot the ledger charged must appear as exactly one
    commit event (replicas retire on their own slots AND record their
    own events, so the totals match on Fg-STP machines too)."""
    tracer = PipelineTracer(capacity=1 << 20)
    result = build_machine(machine, small_config, tracer=tracer).run(
        gcc_trace, workload="gcc", warmup=_WARMUP)
    stack = cpistack_of(result)
    assert stack is not None
    commits = len(tracer.events(UOP))
    assert tracer.dropped == 0
    assert commits == stack.slots["retire"]


@pytest.mark.parametrize("machine", MACHINES)
def test_sampled_stream_is_a_subset(machine, small_config, gcc_trace):
    full = PipelineTracer(capacity=1 << 20)
    build_machine(machine, small_config, tracer=full).run(
        gcc_trace, workload="gcc", warmup=_WARMUP)
    sampled = PipelineTracer(capacity=1 << 20, sample_window=64,
                             sample_period=2)
    build_machine(machine, small_config, tracer=sampled).run(
        gcc_trace, workload="gcc", warmup=_WARMUP)
    full_commits = len(full.events(UOP))
    sampled_commits = len(sampled.events(UOP))
    assert 0 < sampled_commits <= full_commits


def test_measured_instructions_commit_once(small_config, gcc_trace):
    """On the single-core machine (no replication) the commit events
    are exactly the measured instructions, each seq exactly once."""
    tracer = PipelineTracer(capacity=1 << 20)
    result = build_machine("single", small_config, tracer=tracer).run(
        gcc_trace, workload="gcc", warmup=_WARMUP)
    seqs = [event.seq for event in tracer.events(UOP)]
    assert len(seqs) == result.instructions == _LENGTH - _WARMUP
    assert sorted(seqs) == list(range(_LENGTH - _WARMUP))


def test_adaptive_reconfig_events_match_switch_count(small_config):
    """One reconfig instant per mode switch, each spanning the penalty
    the result charged."""
    from repro.fgstp.adaptive import AdaptiveFgStpMachine

    trace = generate_trace("gcc", 4000, 1)
    tracer = PipelineTracer(capacity=1 << 20)
    machine = AdaptiveFgStpMachine(
        small_config, sample_instructions=200, region_instructions=800,
        reconfigure_penalty=50, tracer=tracer)
    result = machine.run(trace, workload="gcc", warmup=400)
    reconfigs = tracer.events(RECONFIG)
    assert len(reconfigs) == result.extra["switches"]
    assert all(event.dur == 50 for event in reconfigs)
    assert tracer.epochs == len(result.extra["modes"])
    # The concatenated ledger rescales regions of different widths, so
    # reconcile architecturally instead: the epoch seq offsets must
    # stitch the regions into one 0-based measured stream covering
    # every instruction (replicated instructions retire one event per
    # copy, all sharing the seq and flagged replica).
    from collections import Counter

    commits = tracer.events(UOP)
    retired_per_seq = Counter(event.seq for event in commits)
    assert set(retired_per_seq) == set(range(result.instructions))
    replicated = {seq for seq, count in retired_per_seq.items()
                  if count > 1}
    assert all(event.replica for event in commits
               if event.seq in replicated)
