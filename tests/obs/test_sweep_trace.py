"""Sweep-engine trace sampling: dumps, result annotation, cache keys."""

import json

from repro.harness.config import ExperimentConfig
from repro.harness.parallel import (ExperimentEngine, SweepJob, make_job)


def _jobs(small_config, benchmarks=("gcc", "mcf")):
    config = ExperimentConfig(trace_length=1200, warmup=400, seed=1)
    return [make_job(machine, benchmark, small_config, config)
            for machine in ("single", "fgstp")
            for benchmark in benchmarks]


def test_trace_sample_full_writes_dumps(small_config, tmp_path):
    engine = ExperimentEngine(max_workers=1, cache_dir=tmp_path,
                              trace_sample=1.0)
    outcome = engine.run(_jobs(small_config))
    assert outcome.ok
    assert all(job.trace for job in outcome.jobs)
    for job, result in zip(outcome.jobs, outcome.results):
        block = result.extra["pipetrace"]
        assert block["events"] > 0
        dump = tmp_path / "traces" / f"{job.key()}.pipetrace.json"
        assert block["dump"] == str(dump)
        document = json.loads(dump.read_text())
        names = {event["args"]["name"]
                 for event in document["traceEvents"]
                 if event["ph"] == "M"
                 and event["name"] == "process_name"}
        assert names == {job.machine}


def test_trace_sample_zero_leaves_jobs_plain(small_config, tmp_path):
    engine = ExperimentEngine(max_workers=1, cache_dir=tmp_path)
    outcome = engine.run(_jobs(small_config, benchmarks=("gcc",)))
    assert outcome.ok
    assert not any(job.trace for job in outcome.jobs)
    assert all("pipetrace" not in result.extra
               for result in outcome.results)
    assert not list((tmp_path / "traces").glob("*.pipetrace.json"))


def test_traced_results_never_served_to_plain_jobs(small_config,
                                                   tmp_path):
    """A traced sweep then a plain sweep over the same matrix: the
    plain run must miss the traced cache entries (distinct keys) and
    its results must not carry the pipetrace block."""
    jobs = _jobs(small_config, benchmarks=("gcc",))
    traced_engine = ExperimentEngine(max_workers=1, cache_dir=tmp_path,
                                     trace_sample=1.0)
    assert traced_engine.run(jobs).ok
    plain_engine = ExperimentEngine(max_workers=1, cache_dir=tmp_path)
    outcome = plain_engine.run(jobs)
    assert outcome.ok
    assert outcome.metrics.result_cache_hits == 0
    assert all("pipetrace" not in result.extra
               for result in outcome.results)
    # Timing is unaffected by tracing: both sweeps agree exactly.
    rerun = ExperimentEngine(max_workers=1, cache_dir=tmp_path,
                             trace_sample=1.0).run(jobs)
    for traced, plain in zip(rerun.results, outcome.results):
        assert traced.cycles == plain.cycles
        assert traced.instructions == plain.instructions


def test_trace_promotion_is_deterministic(small_config, tmp_path):
    engine = ExperimentEngine(max_workers=1, cache_dir=tmp_path,
                              trace_sample=0.5)
    jobs = _jobs(small_config)
    first = [job.trace for job in engine.run(jobs).jobs]
    second = [job.trace for job in engine.run(jobs).jobs]
    assert first == second


def test_trace_field_survives_dataclass_identity(small_config):
    config = ExperimentConfig(trace_length=1200, warmup=400, seed=1)
    job = SweepJob(machine="single", benchmark="gcc",
                   base=small_config, config=config, trace=True)
    assert job.trace and job.name.endswith("/trace")
