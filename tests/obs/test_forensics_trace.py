"""Crash dumps embed the tracer's ring tail and render it."""

import pytest

from repro.integrity.errors import SimulationError
from repro.integrity.forensics import (load_crash_dump,
                                       render_crash_dump,
                                       render_trace_events,
                                       write_crash_dump)
from repro.obs import PipelineTracer
from repro.uarch.pipeline.machine import SingleCoreMachine
from repro.workloads.generator import generate_trace


def _crash_with_tracer(small_config):
    trace = generate_trace("gcc", 1200, 1)
    tracer = PipelineTracer()
    machine = SingleCoreMachine(small_config, max_cycles=50,
                                tracer=tracer)
    with pytest.raises(SimulationError) as excinfo:
        machine.run(trace, workload="gcc")
    return excinfo.value


def test_failure_snapshot_carries_ring_tail(small_config):
    error = _crash_with_tracer(small_config)
    events = (error.snapshot or {}).get("trace_events")
    assert events, "snapshot should embed the tracer tail"
    assert len(events) <= 32
    assert all("kind" in event and "cycle" in event for event in events)
    # The watchdog instant describing the trip is always present, even
    # on a run that committed nothing in the ring's window.
    assert any(event["kind"] == "watchdog" for event in events)


def test_render_crash_dump_shows_mini_timeline(small_config, tmp_path):
    error = _crash_with_tracer(small_config)
    path = write_crash_dump(error, directory=tmp_path, workload="gcc")
    rendered = render_crash_dump(load_crash_dump(path))
    assert "recent pipeline events" in rendered
    assert "watchdog" in rendered


def test_untraced_failure_has_no_trace_section(small_config):
    trace = generate_trace("gcc", 1200, 1)
    machine = SingleCoreMachine(small_config, max_cycles=50)
    with pytest.raises(SimulationError) as excinfo:
        machine.run(trace, workload="gcc")
    snapshot = excinfo.value.snapshot or {}
    assert "trace_events" not in snapshot
    rendered = render_crash_dump(excinfo.value.as_dict())
    assert "recent pipeline events" not in rendered


def test_render_trace_events_direct():
    events = [
        {"kind": "uop", "cycle": 12, "seq": 3, "core": 0, "op": "LOAD",
         "stages": {"fetch": 4, "dispatch": 5, "issue": 6,
                    "complete": 10, "commit": 12}},
        {"kind": "squash", "cycle": 13, "seq": 3, "core": 1,
         "detail": "violation"},
    ]
    lines = render_trace_events(events)
    timeline = [line for line in lines if "|" in line]
    assert timeline and "LOAD" in timeline[0]
    assert any("squash" in line and "violation" in line
               for line in lines)
