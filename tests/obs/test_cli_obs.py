"""CLI smoke tests for ``repro timeline`` and ``repro metrics``."""

import json

import pytest

from repro.__main__ import main

_TINY = ["--length", "1200", "--warmup", "400"]


def test_timeline_chrome_to_file(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["timeline", "gcc", "--config", "small", "--machines",
                 "single", "fgstp", "--format", "chrome", "--out",
                 str(out)] + _TINY)
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    document = json.loads(out.read_text())
    process_names = {event["args"]["name"]
                     for event in document["traceEvents"]
                     if event["ph"] == "M"
                     and event["name"] == "process_name"}
    assert process_names == {"single", "fgstp"}
    assert any(event["ph"] == "X" for event in document["traceEvents"])


def test_timeline_experiment_flag_sets_config(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["timeline", "gcc", "--experiment", "e2", "--machines",
                 "single", "--format", "chrome", "--out", str(out)]
                + _TINY)
    assert code == 0
    assert json.loads(out.read_text())["traceEvents"]


def test_timeline_chrome_to_stdout_parses(capsys):
    code = main(["timeline", "gcc", "--config", "small", "--machines",
                 "single", "--format", "chrome"] + _TINY)
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["traceEvents"]


def test_timeline_ascii(capsys):
    code = main(["timeline", "gcc", "--config", "small", "--machines",
                 "fgstp", "--format", "ascii"] + _TINY)
    assert code == 0
    output = capsys.readouterr().out
    assert "pipeline timeline" in output
    assert "commit occupancy" in output
    assert "F=fetch" in output


def test_timeline_konata_files_per_machine(tmp_path, capsys):
    out = tmp_path / "log.konata"
    code = main(["timeline", "gcc", "--config", "small", "--machines",
                 "single", "fgstp", "--format", "konata", "--out",
                 str(out)] + _TINY)
    assert code == 0
    for machine in ("single", "fgstp"):
        path = tmp_path / f"log.{machine}.konata"
        assert path.read_text().startswith("Kanata\t0004")


def test_timeline_jsonl_stdout(capsys):
    code = main(["timeline", "gcc", "--config", "small", "--machines",
                 "single", "--format", "jsonl"] + _TINY)
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    payloads = [json.loads(line) for line in lines
                if line.startswith("{")]
    assert payloads and all("kind" in payload for payload in payloads)


def test_timeline_rejects_unknown_benchmark():
    assert main(["timeline", "nosuch"] + _TINY) == 2


def test_timeline_rejects_unknown_experiment():
    assert main(["timeline", "gcc", "--experiment", "e999"] + _TINY) == 2


def test_metrics_tables(capsys):
    code = main(["metrics", "gcc", "--config", "small", "--machines",
                 "single", "fgstp"] + _TINY)
    assert code == 0
    output = capsys.readouterr().out
    assert "sim.cycles" in output
    assert "single: metrics" in output
    assert "fgstp: metrics" in output


def test_metrics_json(capsys):
    code = main(["metrics", "gcc", "--config", "small", "--machines",
                 "single", "--json"] + _TINY)
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["single"]["sim.cycles"]["type"] == "gauge"
    assert payload["single"]["sim.cycles"]["value"] > 0


def test_metrics_rejects_unknown_benchmark():
    assert main(["metrics", "nosuch"] + _TINY) == 2
