"""Ring-buffer tracer semantics: bounds, sampling, epochs, instants."""

import pytest

from repro.obs.events import (CHAOS, RECONFIG, SQUASH, STAGE_NAMES, UOP,
                              WATCHDOG, TraceEvent)
from repro.obs.tracer import PipelineTracer


class _FakeUop:
    def __init__(self, seq, cycle):
        self.uid = seq
        self.seq = seq
        self.core_id = 0
        self.cluster = 0
        self.replica = False
        self.fetch_cycle = cycle - 4
        self.dispatch_cycle = cycle - 3
        self.issue_cycle = cycle - 2
        self.complete_cycle = cycle - 1

        class _Record:
            pc = seq * 4

            class op_class:
                name = "IALU"

        self.record = _Record()


def test_ring_is_bounded_and_counts_drops():
    tracer = PipelineTracer(capacity=8)
    for seq in range(20):
        tracer.commit(_FakeUop(seq, cycle=seq + 10), cycle=seq + 10)
    events = tracer.events()
    assert len(events) == 8
    assert tracer.dropped == 12
    # The ring keeps the newest events.
    assert [event.seq for event in events] == list(range(12, 20))


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        PipelineTracer(capacity=0)
    with pytest.raises(ValueError):
        PipelineTracer(sample_window=-1)
    with pytest.raises(ValueError):
        PipelineTracer(sample_period=0)


def test_sampling_is_deterministic_window_function():
    tracer = PipelineTracer(sample_window=10, sample_period=3)
    # Window 0 records, windows 1 and 2 do not, window 3 records again.
    assert tracer.sampled(0) and tracer.sampled(9)
    assert not tracer.sampled(10) and not tracer.sampled(29)
    assert tracer.sampled(30)
    for cycle in (5, 15, 25, 35):
        tracer.commit(_FakeUop(cycle, cycle), cycle)
    assert [event.cycle for event in tracer.events()] == [5, 35]


def test_rare_instants_bypass_sampling():
    tracer = PipelineTracer(sample_window=10, sample_period=2)
    for kind in (SQUASH, RECONFIG, WATCHDOG, CHAOS):
        tracer.instant(kind, 15)  # an unsampled window
    assert len(tracer.events()) == 4
    tracer.instant("intercore.send", 15)  # samplable kind: dropped
    assert len(tracer.events()) == 4


def test_epoch_offsets_shift_cycles_and_seqs():
    tracer = PipelineTracer()
    tracer.begin_epoch(1000, seq_offset=50)
    tracer.commit(_FakeUop(3, cycle=20), cycle=20)
    event = tracer.events()[0]
    assert event.seq == 53
    assert event.cycle == 1020
    assert event.stages == (1016, 1017, 1018, 1019, 1020)
    assert tracer.epochs == 1


def test_missing_stage_cycles_stay_unknown():
    uop = _FakeUop(1, cycle=30)
    uop.issue_cycle = -1
    uop.complete_cycle = -1
    tracer = PipelineTracer()
    tracer.commit(uop, cycle=30)
    stages = tracer.events()[0].stages
    assert stages[2] == -1 and stages[3] == -1
    assert stages[4] == 30


def test_as_dict_shape_and_tail():
    tracer = PipelineTracer()
    tracer.commit(_FakeUop(7, cycle=12), cycle=12)
    tracer.instant(SQUASH, 13, seq=7, core=1, detail="violation")
    payload = tracer.tail()
    assert len(payload) == 2
    uop, squash = payload
    assert uop["kind"] == UOP
    assert set(uop["stages"]) == set(STAGE_NAMES)
    assert squash["kind"] == SQUASH
    assert squash["detail"] == "violation"
    summary = tracer.summary()
    assert summary["recorded"] == 2
    assert summary["by_kind"][UOP] == 1
    tracer.clear()
    assert tracer.events() == [] and tracer.dropped == 0


def test_events_filter_by_kind():
    tracer = PipelineTracer()
    tracer.commit(_FakeUop(1, 10), 10)
    tracer.instant(SQUASH, 11)
    assert [event.kind for event in tracer.events(SQUASH)] == [SQUASH]
    assert all(isinstance(event, TraceEvent)
               for event in tracer.events())
