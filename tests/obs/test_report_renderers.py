"""ASCII renderers: timeline, occupancy, metrics table."""

from repro.harness.report import (metrics_table, occupancy_text,
                                  timeline_text)
from repro.obs import MetricsRegistry, PipelineTracer
from repro.obs.events import TraceEvent


def _uop(seq, commit, core=0, op="IALU"):
    return TraceEvent("uop", commit, seq=seq, uid=seq, core=core,
                      pc=seq * 4, op=op,
                      stages=(commit - 4, commit - 3, commit - 2,
                              commit - 1, commit))


def test_timeline_text_rows_and_axis():
    events = [_uop(seq, 10 + seq) for seq in range(5)]
    text = timeline_text(events)
    assert "pipeline timeline" in text
    assert "F=fetch" in text
    rows = [line for line in text.splitlines() if "|" in line]
    assert len(rows) == 5
    assert all("seq=" in row and "IALU" in row for row in rows)
    assert "R" in rows[0]


def test_timeline_text_empty_and_limit():
    assert "(no lifecycle events recorded)" in timeline_text([])
    events = [_uop(seq, 10 + seq) for seq in range(50)]
    rows = [line for line in timeline_text(events, count=8).splitlines()
            if "|" in line]
    assert len(rows) == 8
    assert "seq=49" in rows[-1]


def test_occupancy_text_buckets_commits():
    events = [_uop(seq, 10) for seq in range(4)] \
        + [_uop(4, 200)]
    text = occupancy_text(events, buckets=4)
    assert "commit occupancy" in text
    assert "peak 4 commit(s)" in text
    bars = [line for line in text.splitlines() if "|" in line]
    assert bars and bars[0].strip().endswith("4")
    assert "(no lifecycle events recorded)" in occupancy_text([])


def test_metrics_table_renders_all_kinds():
    registry = MetricsRegistry()
    registry.counter("events.total").add(42)
    registry.gauge("sim.ipc").set(1.25)
    histogram = registry.histogram("latency")
    histogram.observe(3)
    histogram.observe(100000)
    text = metrics_table(registry)
    assert "metrics registry" in text
    assert "events.total" in text and "42" in text
    assert "sim.ipc" in text
    assert "n=2" in text
    assert ">16384:1" in text  # overflow bucket rendered


def test_renderers_accept_real_tracer_events():
    tracer = PipelineTracer()
    tracer.instant("squash", 5, seq=1, core=0, detail="x")
    # Instants alone: no lifecycle rows, but no crash either.
    assert "(no lifecycle events recorded)" in \
        timeline_text(tracer.events())
