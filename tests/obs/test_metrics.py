"""MetricsRegistry semantics: typing, attach/reset, warm-up coverage."""

import pytest

from repro.harness.runners import build_machine
from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry)
from repro.workloads.generator import generate_trace


def test_get_or_create_shares_instances():
    registry = MetricsRegistry()
    counter = registry.counter("a.b")
    counter.add(3)
    assert registry.counter("a.b") is counter
    assert registry.counter("a.b").value == 3
    assert "a.b" in registry and len(registry) == 1
    assert registry.names() == ["a.b"]


def test_kind_conflict_raises_typeerror():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")
    registry.histogram("h")
    with pytest.raises(TypeError):
        registry.counter("h")


def test_histogram_bucketing_and_mean():
    histogram = Histogram("lat", buckets=(1, 4, 16))
    for value in (0, 1, 2, 4, 5, 100):
        histogram.observe(value)
    # Upper-inclusive bounds: <=1, <=4, <=16, overflow.
    assert histogram.counts == [2, 2, 1, 1]
    assert histogram.count == 6
    assert histogram.mean == pytest.approx(112 / 6)
    histogram.reset()
    assert histogram.counts == [0, 0, 0, 0] and histogram.count == 0
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(4, 2))


def test_attach_requires_reset_stats_and_dedupes():
    class Component:
        def __init__(self):
            self.resets = 0

        def reset_stats(self):
            self.resets += 1

    registry = MetricsRegistry()
    component = Component()
    registry.attach(component)
    registry.attach(component)  # identity-deduped
    counter = registry.counter("c")
    counter.add(5)
    gauge = registry.gauge("g")
    gauge.set(2.5)
    registry.reset()
    assert component.resets == 1
    assert counter.value == 0 and gauge.value == 0.0
    with pytest.raises(TypeError):
        registry.attach(object())


def test_ingest_flattens_nested_stats():
    registry = MetricsRegistry()
    registry.ingest("root", {
        "hits": 7,
        "rate": 0.5,
        "enabled": True,
        "inner": {"deep": 3},
        "skipped": "text",
    })
    flat = registry.collect()
    assert flat["root.hits"] == 7
    assert flat["root.rate"] == 0.5
    assert flat["root.enabled"] == 1
    assert flat["root.inner.deep"] == 3
    assert "root.skipped" not in flat
    assert registry.get("root.hits").kind == "counter"
    assert registry.get("root.rate").kind == "gauge"


def test_as_dict_and_collect_shapes():
    registry = MetricsRegistry()
    registry.counter("c").add(2)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(10)
    payload = registry.as_dict()
    assert payload["c"] == {"type": "counter", "value": 2}
    assert payload["g"] == {"type": "gauge", "value": 1.5}
    assert payload["h"]["count"] == 1
    assert payload["h"]["buckets"] == list(DEFAULT_BUCKETS)
    assert registry.collect() == {"c": 2, "g": 1.5, "h": 10.0}


def test_warmup_reset_covers_registry(small_config):
    """The machine's warm-up reset must zero pre-existing metrics —
    the same leak class the MSHR/prefetcher counters once had."""
    trace = generate_trace("gcc", 1200, 1)
    registry = MetricsRegistry()
    leak = registry.counter("leak.probe")
    leak.add(123)  # would survive warm-up if reset() were skipped
    machine = build_machine("single", small_config, metrics=registry)
    result = machine.run(trace, workload="gcc", warmup=400)
    assert leak.value == 0
    # Ingested metrics reflect the measured window only, matching the
    # result's own (post-reset) statistics exactly.
    flat = registry.collect()
    assert flat["caches.l1d.accesses"] == \
        result.extra["caches"]["l1d"]["accesses"]
    assert flat["sim.cycles"] == result.cycles
    assert flat["sim.instructions"] == result.instructions


def test_warmup_reset_covers_fgstp_registry(small_config):
    trace = generate_trace("gcc", 1200, 1)
    registry = MetricsRegistry()
    registry.gauge("stale.gauge").set(9.0)
    machine = build_machine("fgstp", small_config, metrics=registry)
    result = machine.run(trace, workload="gcc", warmup=400)
    assert registry.get("stale.gauge").value == 0.0
    flat = registry.collect()
    assert flat["sim.cycles"] == result.cycles
    assert flat["sim.instructions"] == result.instructions


def test_metric_classes_export_kind():
    assert Counter("c").kind == "counter"
    assert Gauge("g").kind == "gauge"
    assert Histogram("h").kind == "histogram"
