"""The checkpoint/restore hard invariant: resume is bit-identical.

For every machine, over random programs:

* taking checkpoints is invisible — a checkpointing run produces
  exactly the result of a plain run;
* restoring any snapshot into a *fresh* machine and resuming produces
  exactly the result of the straight-through run;
* both hold with skip-ahead on and off, and under the commit-stream
  oracle (the whole suite already runs with ``REPRO_CPISTACK_CHECK``).
"""

import pytest

from repro.corefusion.machine import CoreFusionMachine
from repro.fgstp.adaptive import AdaptiveFgStpMachine
from repro.fgstp.orchestrator import FgStpMachine
from repro.uarch.params import core_config
from repro.uarch.pipeline.machine import SingleCoreMachine
from repro.workloads.generator import generate_trace

MACHINES = ("single", "corefusion", "fgstp", "fgstp-adaptive")


class CapturingSink:
    """In-memory checkpoint sink: keeps every snapshot, in order."""

    def __init__(self):
        self.saved = []

    def save(self, key, checkpoint):
        self.saved.append((key, checkpoint))
        return None


def build(name, base, **kwargs):
    if name == "single":
        return SingleCoreMachine(base, **kwargs)
    if name == "corefusion":
        return CoreFusionMachine(base, **kwargs)
    if name == "fgstp":
        return FgStpMachine(base, None, **kwargs)
    if name == "fgstp-adaptive":
        # Small regions so a short trace still crosses several
        # checkpointable region boundaries.
        return AdaptiveFgStpMachine(base, None, sample_instructions=400,
                                    region_instructions=1200, **kwargs)
    raise ValueError(name)


@pytest.mark.parametrize("name", MACHINES)
@pytest.mark.parametrize("seed", (1, 5))
def test_restore_and_resume_is_bit_identical(name, seed):
    base = core_config("small")
    trace = generate_trace("gcc", 3000, seed)

    plain = build(name, base).run(trace, workload="gcc", warmup=600)

    sink = CapturingSink()
    straight = build(name, base, checkpoint_interval=700,
                     checkpoint_sink=sink) \
        .run(trace, workload="gcc", warmup=600)
    # Taking checkpoints must not perturb timing in any way.
    assert straight.as_dict() == plain.as_dict()
    assert sink.saved, f"{name} took no checkpoints"

    # Resume from the earliest and the latest snapshot: both must
    # replay the remainder into exactly the straight-through result.
    for _, checkpoint in (sink.saved[0], sink.saved[-1]):
        resumed = build(name, base).run(trace, workload="gcc", warmup=600,
                                        resume_from=checkpoint)
        assert resumed.as_dict() == straight.as_dict()


@pytest.mark.parametrize("name", MACHINES)
def test_every_intermediate_checkpoint_resumes_identically(name):
    """Property over the whole snapshot sequence of one run."""
    base = core_config("small")
    trace = generate_trace("mcf", 2600, 9)
    sink = CapturingSink()
    straight = build(name, base, checkpoint_interval=500,
                     checkpoint_sink=sink) \
        .run(trace, workload="mcf", warmup=400)
    assert sink.saved
    committed_marks = [ckpt.committed for _, ckpt in sink.saved]
    assert committed_marks == sorted(committed_marks)
    for _, checkpoint in sink.saved:
        resumed = build(name, base).run(trace, workload="mcf", warmup=400,
                                        resume_from=checkpoint)
        assert resumed.as_dict() == straight.as_dict()


@pytest.mark.parametrize("skip", (False, True))
def test_identity_holds_with_skip_ahead_toggled(skip):
    base = core_config("small")
    trace = generate_trace("libquantum", 3000, 4)
    sink = CapturingSink()
    machine = build("single", base, checkpoint_interval=600,
                    checkpoint_sink=sink)
    machine.skip_ahead = skip
    straight = machine.run(trace, workload="libquantum", warmup=500)
    assert sink.saved
    resumed_machine = build("single", base)
    resumed_machine.skip_ahead = skip
    resumed = resumed_machine.run(trace, workload="libquantum", warmup=500,
                                  resume_from=sink.saved[-1][1])
    assert resumed.as_dict() == straight.as_dict()


@pytest.mark.parametrize("name", ("single", "fgstp"))
def test_checkpointing_run_is_clean_under_oracle(name):
    """Snapshot writes must not perturb the retirement stream: a
    checkpointing run under the commit-stream oracle retires exactly
    the trace (any divergence raises)."""
    from repro.oracle.attach import run_trace_under_oracle

    base = core_config("small")
    trace = generate_trace("gcc", 2500, 2)
    sink = CapturingSink()
    checked = run_trace_under_oracle(name, trace, base, workload="gcc",
                                     warmup=500, checkpoint_interval=600,
                                     checkpoint_sink=sink)
    assert sink.saved, "oracle run took no checkpoints"
    plain = run_trace_under_oracle(name, trace, base, workload="gcc",
                                   warmup=500)
    checked_d, plain_d = checked.as_dict(), plain.as_dict()
    # The oracle block reports bookkeeping (e.g. checked counts), which
    # is identical anyway; compare everything.
    assert checked_d == plain_d


def test_resume_rejects_foreign_checkpoint():
    from repro.ckpt.state import CheckpointMismatch

    base = core_config("small")
    trace = generate_trace("gcc", 2000, 1)
    sink = CapturingSink()
    build("single", base, checkpoint_interval=500, checkpoint_sink=sink) \
        .run(trace, workload="gcc", warmup=400)
    assert sink.saved
    checkpoint = sink.saved[-1][1]
    other = generate_trace("gcc", 2000, 2)
    with pytest.raises(CheckpointMismatch):
        build("single", base).run(other, workload="gcc", warmup=400,
                                  resume_from=checkpoint)
    with pytest.raises(CheckpointMismatch):
        build("single", base).run(trace, workload="gcc", warmup=300,
                                  resume_from=checkpoint)
