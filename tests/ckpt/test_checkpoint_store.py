"""Checkpoint store format, corruption handling, and chaos coverage.

The store's contract mirrors the result cache's: a checkpoint is either
served intact (sha256-verified) or quarantined and treated as absent —
a corrupt snapshot must never poison a resume.
"""

import json

import pytest

from repro.ckpt.state import (CheckpointCorruption, CheckpointMismatch,
                              MachineCheckpoint, dumps_state, loads_state,
                              trace_fingerprint)
from repro.ckpt.store import (CHECKPOINT_FORMAT, CheckpointStore, run_key)
from repro.integrity.chaos import ChaosSpec, apply_chaos
from repro.uarch.params import core_config
from repro.uarch.pipeline.machine import SingleCoreMachine
from repro.workloads.generator import generate_trace


def _checkpoint(**overrides) -> MachineCheckpoint:
    fields = dict(machine="single", workload="gcc", warmup=5,
                  trace_fingerprint="f" * 16, params_key="pk",
                  cycle=100, committed=50,
                  payload=dumps_state({"answer": 41}))
    fields.update(overrides)
    return MachineCheckpoint(**fields)


def test_save_load_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path / "ckpts")
    path = store.save("abc123", _checkpoint())
    assert path.exists()
    loaded = store.load("abc123")
    assert loaded is not None
    assert loaded.meta() == _checkpoint().meta()
    assert loads_state(loaded.payload) == {"answer": 41}


def test_header_line_is_json_with_checksum(tmp_path):
    store = CheckpointStore(tmp_path / "ckpts")
    path = store.save("abc123", _checkpoint())
    header = json.loads(path.read_bytes().split(b"\n", 1)[0])
    assert header["format"] == CHECKPOINT_FORMAT
    assert len(header["sha256"]) == 64
    assert header["meta"]["machine"] == "single"
    assert header["meta"]["committed"] == 50


def test_load_missing_returns_none(tmp_path):
    store = CheckpointStore(tmp_path / "ckpts")
    assert store.load("nope") is None


def test_corrupt_payload_quarantined(tmp_path):
    store = CheckpointStore(tmp_path / "ckpts")
    path = store.save("abc123", _checkpoint())
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))

    assert store.load("abc123") is None
    assert not path.exists()
    quarantined = list((tmp_path / "quarantine").iterdir())
    assert any(entry.suffix != ".reason" for entry in quarantined)
    assert any(entry.suffix == ".reason" for entry in quarantined)


def test_garbage_header_quarantined(tmp_path):
    store = CheckpointStore(tmp_path / "ckpts")
    path = store.path_for("abc123")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"this is not a checkpoint\nat all")
    assert store.load("abc123") is None
    assert not path.exists()


def test_validate_for_mismatches():
    checkpoint = _checkpoint()
    checkpoint.validate_for("single", "f" * 16, 5, "pk")  # clean
    with pytest.raises(CheckpointMismatch):
        checkpoint.validate_for("fgstp", "f" * 16, 5, "pk")
    with pytest.raises(CheckpointMismatch):
        checkpoint.validate_for("single", "0" * 16, 5, "pk")
    with pytest.raises(CheckpointMismatch):
        checkpoint.validate_for("single", "f" * 16, 6, "pk")
    with pytest.raises(CheckpointMismatch):
        checkpoint.validate_for("single", "f" * 16, 5, "other")


def test_loads_state_rejects_garbage():
    import pickle

    with pytest.raises(CheckpointCorruption):
        loads_state(b"not a pickle")
    with pytest.raises(CheckpointCorruption):
        loads_state(pickle.dumps([1, 2, 3]))  # payload must be a dict


def test_run_key_is_stable_and_discriminating():
    key = run_key("single", "gcc", 100, "pk", "fp")
    assert key == run_key("single", "gcc", 100, "pk", "fp")
    assert key != run_key("fgstp", "gcc", 100, "pk", "fp")
    assert key != run_key("single", "mcf", 100, "pk", "fp")
    assert key != run_key("single", "gcc", 200, "pk", "fp")
    assert key != run_key("single", "gcc", 100, "pk2", "fp")
    assert key != run_key("single", "gcc", 100, "pk", "fp2")


def test_trace_fingerprint_sensitivity():
    trace = generate_trace("gcc", 200, 1)
    assert trace_fingerprint(trace) == trace_fingerprint(trace)
    assert trace_fingerprint(trace) != trace_fingerprint(trace[:-1])
    assert trace_fingerprint(trace) != \
        trace_fingerprint(generate_trace("gcc", 200, 2))


def test_corrupt_checkpoint_chaos_is_detected(tmp_path):
    """The chaos kind provably lands in the payload and is caught.

    Every file the vandalised sink writes must fail its sha256 check on
    load, get quarantined, and read back as absent — while the run
    itself stays bit-identical (checkpoint writes never affect timing).
    """
    base = core_config("small")
    trace = generate_trace("gcc", 2500, 3)
    store = CheckpointStore(tmp_path / "ckpts")

    machine = SingleCoreMachine(base, checkpoint_interval=600,
                                checkpoint_sink=store)
    apply_chaos(machine, ChaosSpec.parse("corrupt_checkpoint"))
    assert machine._chaos_kinds == ("corrupt_checkpoint",)
    result = machine.run(trace, workload="gcc", warmup=500)

    plain = SingleCoreMachine(base).run(trace, workload="gcc", warmup=500)
    assert result.as_dict() == plain.as_dict()

    written = list((tmp_path / "ckpts").glob("*.ckpt"))
    assert written, "chaos run took no checkpoints"
    for path in written:
        assert store.load(path.stem) is None
    assert not list((tmp_path / "ckpts").glob("*.ckpt"))
    reasons = list((tmp_path / "quarantine").glob("*.reason"))
    assert len(reasons) == len(written)


def test_corrupt_checkpoint_chaos_never_poisons_run_machine(
        tmp_path, monkeypatch):
    """Under env chaos + env interval, ``run_machine`` stays correct:
    auto-resume refuses the chaos-built machine and results match a
    clean run exactly."""
    from repro.harness.config import ExperimentConfig
    from repro.harness.runners import run_machine
    from repro.workloads.suite import TraceCache

    base = core_config("small")
    config = ExperimentConfig(trace_length=2500, warmup=500, seed=3)
    clean = run_machine("single", "gcc", base, config, cache=TraceCache())

    monkeypatch.setenv("REPRO_CHECKPOINT_INTERVAL", "600")
    monkeypatch.setenv("REPRO_CHAOS", "corrupt_checkpoint")
    store = CheckpointStore(tmp_path / "ckpts")
    for _ in range(2):  # second run must not resume from corrupt files
        chaotic = run_machine("single", "gcc", base, config,
                              cache=TraceCache(), checkpoint_sink=store)
        assert chaotic.as_dict() == clean.as_dict()
